//! Address maps and sharing maps (paper §3.2, §3.4).
//!
//! "An address map is a doubly linked list of address map entries each of
//! which maps a contiguous range of virtual addresses onto a contiguous
//! area of a memory object. This linked list is sorted in order of
//! ascending virtual address and different entries may not map overlapping
//! regions of memory." The structure was chosen because it makes the
//! frequent operations cheap — fault lookups (helped by a "last fault"
//! **hint**), range copy/protection operations, and allocation /
//! deallocation — and "does not penalize large, sparse address spaces."
//!
//! # The ordered index
//!
//! This reproduction keeps the paper's *semantics* but replaces the linked
//! list's O(n) scan with an **O(log n) ordered index**: entries live in a
//! balanced tree ([`std::collections::BTreeMap`]) keyed by start address.
//! The paper's 1987 maps held "about five" entries, where a list is
//! unbeatable; the fleet-scale workloads this repository grows toward
//! (thousands of forked tasks, up to 10^6 entries — see
//! `docs/WORKLOADS.md`) hit the list's O(n) cliff, which the
//! `scan_distance` health gauge was built to expose.
//!
//! The **last-fault hint is preserved exactly** (§3.2): every lookup
//! checks the hinted entry first, then its successor (the sequential-fault
//! fast path), and only a hint *miss* consults the index. Because the hint
//! logic is identical in both modes, `hint_hits`/`hint_misses` accounting,
//! Table 2-1 statistics and trace events do not depend on the search
//! algorithm — a property enforced by `tests/map_index_props.rs`, which
//! replays fault sequences against a linear-scan reference
//! ([`crate::ctx::CoreRefs::map_indexed`] cleared) and demands identical
//! `VmStats` and trace totals. The two algorithms are priced against each
//! other at 10^2/10^4/10^6 entries in `BENCH_vm.json`'s
//! `map_index_ablation` section: each lookup charges
//! [`mach_hw::cost::CostModel::lookup_step`] cycles per entry visited
//! (linear) or per tree level probed (indexed), so the win is measured in
//! simulated cycles, not asserted.
//!
//! Locking: the index lives entirely inside the map's single mutex
//! (`vm_map` level, the **top** of the DESIGN.md §8 lock hierarchy), so it
//! adds no lock-ordering edges; concurrent lookups and clips serialize on
//! the map exactly as the list did (`tests/interleave_model.rs` enumerates
//! those schedules).
//!
//! A **sharing map** "is identical to an address map" except that it is
//! referenced *by* other maps' entries and has no pmap of its own;
//! operations that must affect every task sharing a region are applied to
//! the sharing map once (§3.4).

use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use mach_pmap::Pmap;
use parking_lot::Mutex;

use crate::ctx::CoreRefs;
use crate::object::{self, VmObject};
use crate::ops::VmOp;
use crate::types::{Inheritance, Protection, VmError, VmResult};

/// What an entry maps to.
#[derive(Debug, Clone)]
pub enum MapTarget {
    /// A memory object at a byte offset.
    Object {
        /// The object.
        object: Arc<VmObject>,
        /// Byte offset of the entry's first page within the object.
        offset: u64,
    },
    /// A sharing map at a byte offset (read/write sharing, §3.4).
    Share {
        /// The sharing map.
        map: Arc<VmMap>,
        /// Address within the sharing map of the entry's first page.
        offset: u64,
    },
}

/// One address map entry.
///
/// All addresses within an entry share the same attributes; differing
/// attributes force a split — "this can force the system to allocate two
/// address map entries that map adjacent memory regions to the same memory
/// object simply because the properties of the two regions are different."
#[derive(Debug, Clone)]
pub struct MapEntry {
    /// First address (page aligned, inclusive). Doubles as the entry's
    /// key in the map's ordered index.
    pub start: u64,
    /// Last address (page aligned, exclusive).
    pub end: u64,
    /// The mapped object or sharing map.
    pub target: MapTarget,
    /// Current protection.
    pub prot: Protection,
    /// Maximum protection (can only be lowered).
    pub max_prot: Protection,
    /// Inheritance at fork.
    pub inheritance: Inheritance,
    /// Entry is a copy-on-write mapping.
    pub copy_on_write: bool,
    /// Copy-on-write still needs its shadow object (created at the first
    /// write fault).
    pub needs_copy: bool,
    /// Pages in this entry are wired.
    pub wired: bool,
}

impl MapEntry {
    fn size(&self) -> u64 {
        self.end - self.start
    }

    /// Take the references a duplicate of this entry needs.
    fn reference_target(&self) {
        if let MapTarget::Object { object, .. } = &self.target {
            object.reference();
        }
        // Sharing maps are reference-counted by `Arc` itself.
    }
}

/// The entries of one map: a balanced tree keyed by start address plus
/// the paper's last-fault hint. Entry keys always equal `entry.start`;
/// entries never overlap, so the predecessor query
/// `range(..=addr).next_back()` finds the unique candidate for any
/// address.
#[derive(Debug, Default)]
struct MapInner {
    /// The ordered index (replaces the sorted doubly-linked list).
    entries: BTreeMap<u64, MapEntry>,
    /// The paper's "last fault hint": start key of the entry that
    /// satisfied the previous lookup.
    hint: Option<u64>,
}

impl MapInner {
    fn entry(&self, k: u64) -> &MapEntry {
        self.entries.get(&k).expect("live entry")
    }

    fn entry_mut(&mut self, k: u64) -> &mut MapEntry {
        self.entries.get_mut(&k).expect("live entry")
    }

    /// Key of the entry after `k` in address order.
    fn next_key(&self, k: u64) -> Option<u64> {
        self.entries
            .range((Excluded(k), Unbounded))
            .next()
            .map(|(&n, _)| n)
    }

    /// Key of the entry before `k` in address order.
    fn prev_key(&self, k: u64) -> Option<u64> {
        self.entries.range(..k).next_back().map(|(&p, _)| p)
    }

    /// Insert `entry` into the index (O(log n)); returns its key. The
    /// caller guarantees non-overlap.
    fn insert(&mut self, entry: MapEntry) -> u64 {
        let k = entry.start;
        let old = self.entries.insert(k, entry);
        debug_assert!(old.is_none(), "overlapping map entry at {k:#x}");
        k
    }

    /// Remove the entry at `k`, repointing the hint at a neighbour (the
    /// predecessor, else the successor — the list code's `prev.or(next)`).
    fn unlink(&mut self, k: u64) -> MapEntry {
        if self.hint == Some(k) {
            self.hint = self.prev_key(k).or_else(|| self.next_key(k));
        }
        self.entries.remove(&k).expect("live entry")
    }

    /// Find the entry containing `addr`, hint-first (§3.2).
    ///
    /// The hint and its successor are always checked first; only a hint
    /// miss searches — through the ordered index by default, or by the
    /// paper's linear walk when `ctx.map_indexed` is cleared (the ablation
    /// reference). Each entry visited / tree level probed charges one
    /// `lookup_step` cycle, and the health gauge records the same count:
    /// 0 for a hint hit, 1 for the hint's successor, then n entries walked
    /// (linear) or ~log2(n) probes (indexed).
    fn lookup(&mut self, addr: u64, ctx: &CoreRefs) -> Option<u64> {
        let step = ctx.machine.cost().lookup_step;
        let mut steps = 0u64;
        if let Some(h) = self.hint {
            if let Some(e) = self.entries.get(&h) {
                steps += 1;
                if e.start <= addr && addr < e.end {
                    ctx.machine.charge(step * steps);
                    ctx.stats.hint_hits.fetch_add(1, Ordering::Relaxed);
                    ctx.health.scan_distance(0);
                    return Some(h);
                }
                // Sequential access: the next entry is the second guess.
                if let Some((&nk, ne)) = self.entries.range((Excluded(h), Unbounded)).next() {
                    steps += 1;
                    if ne.start <= addr && addr < ne.end {
                        ctx.machine.charge(step * steps);
                        ctx.stats.hint_hits.fetch_add(1, Ordering::Relaxed);
                        ctx.health.scan_distance(1);
                        self.hint = Some(nk);
                        return Some(nk);
                    }
                }
            }
        }
        ctx.stats.hint_misses.fetch_add(1, Ordering::Relaxed);
        if ctx.map_indexed.load(Ordering::Relaxed) {
            // O(log n): the entry with the greatest start <= addr is the
            // only one that can contain it (entries never overlap).
            let n = self.entries.len() as u64;
            let probes = (64 - n.leading_zeros() as u64).max(1);
            steps += probes;
            let found = self
                .entries
                .range(..=addr)
                .next_back()
                .and_then(|(&k, e)| (addr < e.end).then_some(k));
            ctx.machine.charge(step * steps);
            ctx.health.scan_distance(probes);
            if let Some(k) = found {
                self.hint = Some(k);
            }
            found
        } else {
            // Reference mode: the paper's linear walk from the first
            // entry, stopping at the first entry past `addr`.
            let mut visited = 0u64;
            let mut found = None;
            for (&k, e) in self.entries.iter() {
                visited += 1;
                if e.start <= addr && addr < e.end {
                    found = Some(k);
                    break;
                }
                if e.start > addr {
                    break;
                }
            }
            ctx.machine.charge(step * (steps + visited));
            ctx.health.scan_distance(visited);
            if let Some(k) = found {
                self.hint = Some(k);
            }
            found
        }
    }

    /// Split the entry at `k` so that a boundary falls at `addr`; returns
    /// the key of the piece containing `addr`.
    fn clip_start(&mut self, k: u64, addr: u64) -> u64 {
        let (start, end) = {
            let e = self.entry(k);
            (e.start, e.end)
        };
        if addr <= start || addr >= end {
            return k;
        }
        // k keeps [start, addr); the clone takes [addr, end).
        let mut tail = self.entry(k).clone();
        tail.reference_target();
        tail.start = addr;
        bump_offset(&mut tail, addr - start);
        self.entry_mut(k).end = addr;
        self.insert(tail)
    }

    /// Keys of all entries intersecting `[start, end)`, clipped to it.
    fn clip_range(&mut self, start: u64, end: u64, ctx: &CoreRefs) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = match self.lookup(start, ctx) {
            Some(k) => Some(self.clip_start(k, start)),
            // No entry contains start: the first at or after it.
            None => self.entries.range(start..).next().map(|(&k, _)| k),
        };
        while let Some(k) = cur {
            if self.entry(k).start >= end {
                break;
            }
            if self.entry(k).end > end {
                self.clip_start(k, end);
            }
            out.push(k);
            cur = self.next_key(k);
        }
        out
    }

    /// Merge the entry at `k` into its predecessor when they are
    /// perfectly compatible (the inverse of clipping). Returns the
    /// absorbed entry's target, whose reference the caller must release.
    fn try_merge_prev(&mut self, k: u64) -> Option<MapTarget> {
        let p = self.prev_key(k)?;
        let (a, b) = (self.entry(p), self.entry(k));
        if a.end != b.start
            || a.prot != b.prot
            || a.max_prot != b.max_prot
            || a.inheritance != b.inheritance
            || a.copy_on_write != b.copy_on_write
            || a.needs_copy != b.needs_copy
            || a.wired != b.wired
        {
            return None;
        }
        let contiguous = match (&a.target, &b.target) {
            (
                MapTarget::Object {
                    object: oa,
                    offset: fa,
                },
                MapTarget::Object {
                    object: ob,
                    offset: fb,
                },
            ) => Arc::ptr_eq(oa, ob) && fa + a.size() == *fb,
            (
                MapTarget::Share {
                    map: ma,
                    offset: fa,
                },
                MapTarget::Share {
                    map: mb,
                    offset: fb,
                },
            ) => Arc::ptr_eq(ma, mb) && fa + a.size() == *fb,
            _ => false,
        };
        if !contiguous {
            return None;
        }
        let absorbed = self.unlink(k);
        self.entry_mut(p).end = absorbed.end;
        self.hint = Some(p);
        Some(absorbed.target)
    }

    /// Coalesce mergeable neighbours across `[start, end)` (the
    /// `vm_map_simplify` of real Mach: clipping splits entries, this
    /// heals them so "an address map is typically small" stays true).
    fn simplify(&mut self, start: u64, end: u64, ctx: &CoreRefs) -> Vec<MapTarget> {
        let mut released = Vec::new();
        let mut cur = match self.lookup(start, ctx) {
            Some(k) => Some(k),
            None => self.entries.range(start..).next().map(|(&k, _)| k),
        };
        while let Some(k) = cur {
            if self.entry(k).start > end {
                break;
            }
            let next = self.next_key(k);
            if let Some(target) = self.try_merge_prev(k) {
                released.push(target);
                // `k` vanished; continue from the same place via `next`.
            }
            cur = next;
        }
        released
    }

    /// First-fit search for a free range of `size` bytes in `[lo, hi)`.
    /// Starts the gap walk at `lo`'s predecessor entry (an index query),
    /// not the map's first entry.
    fn find_space(&self, size: u64, lo: u64, hi: u64) -> Option<u64> {
        let mut candidate = lo;
        let begin = self
            .entries
            .range(..=lo)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(0);
        for (_, e) in self.entries.range(begin..) {
            if e.start >= candidate && e.start - candidate >= size {
                break;
            }
            candidate = candidate.max(e.end);
        }
        if candidate.checked_add(size).is_none_or(|end| end > hi) {
            None
        } else {
            Some(candidate)
        }
    }
}

fn bump_offset(e: &mut MapEntry, delta: u64) {
    match &mut e.target {
        MapTarget::Object { offset, .. } => *offset += delta,
        MapTarget::Share { offset, .. } => *offset += delta,
    }
}

/// Summary of one region, as returned by `vm_regions` (Table 2-1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    /// First address.
    pub start: u64,
    /// One past the last address.
    pub end: u64,
    /// Current protection.
    pub prot: Protection,
    /// Maximum protection.
    pub max_prot: Protection,
    /// Inheritance.
    pub inheritance: Inheritance,
    /// True for read/write-shared regions (sharing-map backed).
    pub shared: bool,
    /// True for copy-on-write regions.
    pub copy_on_write: bool,
    /// Id of the backing object (or sharing map pseudo-id).
    pub object_id: u64,
}

/// The result of resolving a fault address down to its object.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The map whose entry directly holds the object (the task map, or a
    /// sharing map).
    pub holder: Arc<VmMap>,
    /// Address of the page *within the holder map*.
    pub holder_addr: u64,
    /// The backing object.
    pub object: Arc<VmObject>,
    /// Byte offset of the page within `object`.
    pub offset: u64,
    /// Effective current protection (intersected along the path).
    pub prot: Protection,
    /// Entry is copy-on-write and the shadow has not been created yet.
    pub needs_copy: bool,
    /// Entry is copy-on-write.
    pub copy_on_write: bool,
    /// Entry is wired.
    pub wired: bool,
}

/// An address map: a task's (with a pmap) or a sharing map (without).
///
/// All entry state sits behind one mutex at the **top** of the lock
/// hierarchy (DESIGN.md §8): lookups, clips and inserts serialize here
/// before any object lock is taken, so the ordered index introduces no
/// new lock-ordering edges.
#[derive(Debug)]
pub struct VmMap {
    pmap: Option<Arc<dyn Pmap>>,
    lo: u64,
    hi: u64,
    inner: Mutex<MapInner>,
    /// Back reference for teardown: dropping a map releases its entries'
    /// object references (task exit, last un-share).
    ctx: std::sync::Weak<CoreRefs>,
    /// Id of the owning task (0 = kernel / sharing map); trace-event
    /// attribution only.
    owner: std::sync::atomic::AtomicU64,
}

impl VmMap {
    /// A task address map over `[lo, hi)` driving `pmap`.
    pub fn new_task_map(ctx: &Arc<CoreRefs>, pmap: Arc<dyn Pmap>, lo: u64, hi: u64) -> Arc<VmMap> {
        Arc::new(VmMap {
            pmap: Some(pmap),
            lo,
            hi,
            inner: Mutex::new(MapInner::default()),
            ctx: Arc::downgrade(ctx),
            owner: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// A sharing map covering `[0, size)`.
    pub fn new_sharing_map(ctx: &std::sync::Weak<CoreRefs>, size: u64) -> Arc<VmMap> {
        Arc::new(VmMap {
            pmap: None,
            lo: 0,
            hi: size,
            inner: Mutex::new(MapInner::default()),
            ctx: ctx.clone(),
            owner: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The owning task's id (0 = kernel / sharing map).
    pub fn owner(&self) -> u64 {
        self.owner.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Record the owning task's id for trace attribution.
    pub(crate) fn set_owner(&self, id: u64) {
        self.owner.store(id, std::sync::atomic::Ordering::Relaxed);
    }

    /// The pmap this map drives (`None` for sharing maps).
    pub fn pmap(&self) -> Option<&Arc<dyn Pmap>> {
        self.pmap.as_ref()
    }

    /// Lowest mappable address.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Highest mappable address + 1.
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of entries (a typical UNIX process has about five — §3.2;
    /// the fleet ablation builds maps of 10^6).
    pub fn entry_count(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Allocate zero-filled memory (the `vm_allocate` primitive).
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`], [`VmError::NoSpace`] or
    /// [`VmError::AlreadyAllocated`].
    pub fn allocate(
        &self,
        ctx: &CoreRefs,
        addr: Option<u64>,
        size: u64,
        anywhere: bool,
    ) -> VmResult<u64> {
        let size = ctx.round_page(size);
        if size == 0 {
            return Err(VmError::BadAlignment);
        }
        let object = VmObject::new_internal(size);
        let start = self.map_object(
            ctx,
            addr,
            size,
            object,
            0,
            Protection::DEFAULT,
            Protection::ALL,
            anywhere,
        )?;
        if self.owner() != 0 {
            ctx.record_op(VmOp::Allocate {
                task: self.owner(),
                addr: start,
                size,
            });
        }
        Ok(start)
    }

    /// Map `object` (already holding one reference for this mapping) into
    /// the map.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`], [`VmError::NoSpace`] or
    /// [`VmError::AlreadyAllocated`].
    #[allow(clippy::too_many_arguments)]
    pub fn map_object(
        &self,
        ctx: &CoreRefs,
        addr: Option<u64>,
        size: u64,
        object: Arc<VmObject>,
        offset: u64,
        prot: Protection,
        max_prot: Protection,
        anywhere: bool,
    ) -> VmResult<u64> {
        let size = ctx.round_page(size);
        let mut g = self.inner.lock();
        let start = match (addr, anywhere) {
            (Some(a), false) => {
                if a % ctx.page_size != 0 {
                    return Err(VmError::BadAlignment);
                }
                // The exact range must be free: the last entry starting
                // below the range's end is the only overlap candidate
                // (an index query, so fixed-address maps build in
                // O(n log n), not O(n^2)).
                let taken = g
                    .entries
                    .range(..a + size)
                    .next_back()
                    .is_some_and(|(_, e)| e.end > a);
                if taken {
                    return Err(VmError::AlreadyAllocated);
                }
                a
            }
            (hint, _) => {
                let lo = hint.unwrap_or(self.lo).max(self.lo);
                g.find_space(size, lo, self.hi)
                    .or_else(|| g.find_space(size, self.lo, self.hi))
                    .ok_or(VmError::NoSpace)?
            }
        };
        g.insert(MapEntry {
            start,
            end: start + size,
            target: MapTarget::Object { object, offset },
            prot,
            max_prot,
            inheritance: Inheritance::Copy,
            copy_on_write: false,
            needs_copy: false,
            wired: false,
        });
        Ok(start)
    }

    /// Insert a pre-built entry (fork, `vm_copy`).
    pub(crate) fn insert_entry(&self, entry: MapEntry) {
        self.inner.lock().insert(entry);
    }

    /// Deallocate `[start, start+size)` (the `vm_deallocate` primitive).
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`] on unaligned input.
    pub fn deallocate(&self, ctx: &CoreRefs, start: u64, size: u64) -> VmResult<()> {
        if !start.is_multiple_of(ctx.page_size) {
            return Err(VmError::BadAlignment);
        }
        let size = ctx.round_page(size);
        if self.owner() != 0 {
            ctx.record_op(VmOp::Deallocate {
                task: self.owner(),
                addr: start,
                size,
            });
        }
        let end = start + size;
        let removed: Vec<MapEntry> = {
            let mut g = self.inner.lock();
            let keys = g.clip_range(start, end, ctx);
            keys.into_iter().map(|k| g.unlink(k)).collect()
        };
        if let Some(pmap) = &self.pmap {
            if !removed.is_empty() {
                pmap.remove(mach_hw::VAddr(start), mach_hw::VAddr(end));
            }
        }
        for e in removed {
            match e.target {
                MapTarget::Object { object, .. } => object::deallocate(&object, ctx),
                MapTarget::Share { map, .. } => drop(map),
            }
        }
        Ok(())
    }

    /// Set current or maximum protection (the `vm_protect` primitive).
    ///
    /// Lowering the maximum below the current protection lowers the
    /// current protection as well (paper §2.1).
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the range is not fully allocated,
    /// [`VmError::ProtectionFailure`] if raising current above maximum.
    pub fn protect(
        &self,
        ctx: &CoreRefs,
        start: u64,
        size: u64,
        set_maximum: bool,
        new_prot: Protection,
    ) -> VmResult<()> {
        let size = ctx.round_page(size);
        if self.owner() != 0 {
            ctx.record_op(VmOp::Protect {
                task: self.owner(),
                addr: start,
                size,
                set_maximum,
                prot: new_prot,
            });
        }
        let end = start + size;
        let mut shared_updates: Vec<(Arc<VmMap>, u64, u64)> = Vec::new();
        {
            let mut g = self.inner.lock();
            let keys = g.clip_range(start, end, ctx);
            let covered: u64 = keys.iter().map(|&k| g.entry(k).size()).sum();
            if covered != size {
                return Err(VmError::InvalidAddress);
            }
            // Validate before mutating.
            if !set_maximum {
                for &k in &keys {
                    if !g.entry(k).max_prot.contains(new_prot) {
                        return Err(VmError::ProtectionFailure);
                    }
                }
            }
            for k in keys {
                let e = g.entry_mut(k);
                if set_maximum {
                    e.max_prot = new_prot;
                    e.prot = e.prot.intersect(new_prot);
                } else {
                    e.prot = new_prot;
                }
                if let MapTarget::Share { map, offset } = &e.target {
                    shared_updates.push((Arc::clone(map), *offset, e.size()));
                }
            }
        }
        // Clipping may have split entries that are now identical again.
        self.release_targets(ctx, {
            let mut g = self.inner.lock();
            g.simplify(start.saturating_sub(1), end + 1, ctx)
        });
        // Apply to the hardware map of this task.
        if let Some(pmap) = &self.pmap {
            pmap.protect(mach_hw::VAddr(start), mach_hw::VAddr(end), new_prot.to_hw());
        }
        // Shared regions: narrow every other task's hardware mappings via
        // the physical-page interface (the reason pmap_copy_on_write and
        // pmap_remove_all are physical — paper §3.4/§5.2).
        for (share_map, offset, len) in shared_updates {
            share_map.narrow_resident_hw(ctx, offset, len, new_prot);
        }
        Ok(())
    }

    /// Narrow the hardware access of every resident page in `[off,
    /// off+len)` of this (sharing) map to at most `prot`.
    fn narrow_resident_hw(&self, ctx: &CoreRefs, off: u64, len: u64, prot: Protection) {
        let page = ctx.page_size;
        let mut g = self.inner.lock();
        let keys = g.clip_range(off, off + len, ctx);
        let mut work = Vec::new();
        for k in keys {
            let e = g.entry(k);
            if let MapTarget::Object { object, offset } = &e.target {
                work.push((Arc::clone(object), *offset, e.size()));
            }
        }
        drop(g);
        if prot.contains(Protection::WRITE) {
            return; // widening is lazy: faults re-establish
        }
        for (object, obj_off, size) in work {
            // Snapshot the page list, then drop the object lock before
            // the shootdowns: a faulting task on another CPU must be able
            // to take this lock (and keep polling) while we wait for its
            // TLB acknowledgement.
            let pages: Vec<crate::page::PageId> = {
                let s = object.lock();
                s.resident
                    .range(obj_off..obj_off + size)
                    .map(|(_, &pid)| pid)
                    .collect()
            };
            for pid in pages {
                if prot.is_none() {
                    ctx.machdep.remove_all(pid.base(page), page);
                } else {
                    ctx.machdep.copy_on_write(pid.base(page), page);
                }
            }
        }
    }

    /// Set the inheritance attribute (the `vm_inherit` primitive).
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the range is not fully allocated.
    pub fn inherit(
        &self,
        ctx: &CoreRefs,
        start: u64,
        size: u64,
        inheritance: Inheritance,
    ) -> VmResult<()> {
        let size = ctx.round_page(size);
        if self.owner() != 0 {
            ctx.record_op(VmOp::Inherit {
                task: self.owner(),
                addr: start,
                size,
                inheritance,
            });
        }
        let mut g = self.inner.lock();
        let keys = g.clip_range(start, start + size, ctx);
        let covered: u64 = keys.iter().map(|&k| g.entry(k).size()).sum();
        if covered != size {
            return Err(VmError::InvalidAddress);
        }
        for k in keys {
            g.entry_mut(k).inheritance = inheritance;
        }
        let released = g.simplify(start.saturating_sub(1), start + size + 1, ctx);
        drop(g);
        self.release_targets(ctx, released);
        Ok(())
    }

    /// Release the object references of absorbed entry targets.
    fn release_targets(&self, ctx: &CoreRefs, targets: Vec<MapTarget>) {
        for t in targets {
            match t {
                MapTarget::Object { object, .. } => object::deallocate(&object, ctx),
                MapTarget::Share { map, .. } => drop(map),
            }
        }
    }

    /// Describe the regions of this map (the `vm_regions` primitive).
    pub fn regions(&self) -> Vec<RegionInfo> {
        let g = self.inner.lock();
        g.entries
            .values()
            .map(|e| {
                let (shared, object_id) = match &e.target {
                    MapTarget::Object { object, .. } => (false, object.id()),
                    MapTarget::Share { map, .. } => (true, Arc::as_ptr(map) as u64),
                };
                RegionInfo {
                    start: e.start,
                    end: e.end,
                    prot: e.prot,
                    max_prot: e.max_prot,
                    inheritance: e.inheritance,
                    shared,
                    copy_on_write: e.copy_on_write,
                    object_id,
                }
            })
            .collect()
    }

    /// Resolve `addr` (page aligned) down to its object, following at most
    /// one level of sharing map — "sharing maps do not need to reference
    /// other sharing maps" (§3.4).
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] when nothing is mapped at `addr`.
    pub fn resolve(self: &Arc<VmMap>, ctx: &CoreRefs, addr: u64) -> VmResult<Resolved> {
        let (target, prot, needs_copy, cow, wired, entry_start) = {
            let mut g = self.inner.lock();
            let k = g.lookup(addr, ctx).ok_or(VmError::InvalidAddress)?;
            let e = g.entry(k);
            (
                e.target.clone(),
                e.prot,
                e.needs_copy,
                e.copy_on_write,
                e.wired,
                e.start,
            )
        };
        match target {
            MapTarget::Object { object, offset } => Ok(Resolved {
                holder: Arc::clone(self),
                holder_addr: addr,
                object,
                offset: offset + (addr - entry_start),
                prot,
                needs_copy,
                copy_on_write: cow,
                wired,
            }),
            MapTarget::Share { map, offset } => {
                let share_addr = offset + (addr - entry_start);
                let mut r = map.resolve(ctx, share_addr)?;
                r.prot = r.prot.intersect(prot);
                r.wired |= wired;
                Ok(r)
            }
        }
    }

    /// Create the shadow object for a copy-on-write entry at its first
    /// write fault (clears `needs_copy`). `addr` is any address within the
    /// entry *of the holder map*.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the entry vanished meanwhile.
    pub fn install_shadow(&self, ctx: &CoreRefs, addr: u64) -> VmResult<()> {
        self.install_shadow_for(ctx, addr, true)
    }

    /// As [`VmMap::install_shadow`], but also shadows entries whose object
    /// demanded `pager_readonly` treatment (writes must go to a new
    /// object) even when `needs_copy` is clear.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the entry vanished meanwhile.
    pub fn install_shadow_for(
        &self,
        ctx: &CoreRefs,
        addr: u64,
        _had_needs_copy: bool,
    ) -> VmResult<()> {
        let mut g = self.inner.lock();
        let k = g.lookup(addr, ctx).ok_or(VmError::InvalidAddress)?;
        let e = g.entry_mut(k);
        if !e.needs_copy {
            let readonly_obj = match &e.target {
                MapTarget::Object { object, .. } => object.lock().pager_readonly,
                MapTarget::Share { .. } => false,
            };
            if !readonly_obj {
                return Ok(());
            }
        }
        let size = e.size();
        if let MapTarget::Object { object, offset } = &e.target {
            let shadow = VmObject::new_shadow(size, object, *offset);
            // The entry's reference moves from the backing object to the
            // shadow (new_shadow took the backing reference the chain
            // needs).
            let old = Arc::clone(object);
            e.target = MapTarget::Object {
                object: shadow,
                offset: 0,
            };
            e.needs_copy = false;
            drop(g);
            object::deallocate(&old, ctx);
        }
        Ok(())
    }

    /// Convert the entry containing `addr` into a sharing-map entry and
    /// return `(sharing map, offset)`; used at fork for
    /// [`Inheritance::Shared`] regions. Idempotent.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if nothing is mapped at `addr`.
    pub fn share_entry(&self, ctx: &CoreRefs, addr: u64) -> VmResult<(Arc<VmMap>, u64, u64, u64)> {
        let mut g = self.inner.lock();
        let k = g.lookup(addr, ctx).ok_or(VmError::InvalidAddress)?;
        let e = g.entry_mut(k);
        let (start, end) = (e.start, e.end);
        match &e.target {
            MapTarget::Share { map, offset } => Ok((Arc::clone(map), *offset, start, end)),
            MapTarget::Object { object, offset } => {
                let size = e.size();
                let share = VmMap::new_sharing_map(&self.ctx, size);
                share.insert_entry(MapEntry {
                    start: 0,
                    end: size,
                    target: MapTarget::Object {
                        object: Arc::clone(object),
                        offset: *offset,
                    },
                    prot: Protection::ALL,
                    max_prot: Protection::ALL,
                    inheritance: Inheritance::Shared,
                    copy_on_write: e.copy_on_write,
                    needs_copy: e.needs_copy,
                    wired: false,
                });
                e.target = MapTarget::Share {
                    map: Arc::clone(&share),
                    offset: 0,
                };
                e.copy_on_write = false;
                e.needs_copy = false;
                Ok((share, 0, start, end))
            }
        }
    }

    /// First-fit search for a free `size`-byte range (the caller inserts
    /// into it promptly; like all map reservations it is raced only by
    /// the caller's own concurrent operations).
    ///
    /// # Errors
    ///
    /// [`VmError::NoSpace`] when no gap is large enough.
    pub(crate) fn find_free(&self, size: u64) -> VmResult<u64> {
        self.inner
            .lock()
            .find_space(size, self.lo, self.hi)
            .ok_or(VmError::NoSpace)
    }

    /// Snapshot all entries (fork and `vm_copy` source scans).
    pub(crate) fn snapshot_entries(&self) -> Vec<MapEntry> {
        self.inner.lock().entries.values().cloned().collect()
    }

    /// Clip the map at `[start, end)` boundaries and snapshot the covered
    /// entries, marking them copy-on-write (`vm_copy` source side). Every
    /// returned entry has had its target referenced for the caller.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the range is not fully allocated.
    pub(crate) fn copy_entries(
        &self,
        ctx: &CoreRefs,
        start: u64,
        end: u64,
    ) -> VmResult<Vec<MapEntry>> {
        let mut g = self.inner.lock();
        let keys = g.clip_range(start, end, ctx);
        let covered: u64 = keys.iter().map(|&k| g.entry(k).size()).sum();
        if covered != end - start {
            return Err(VmError::InvalidAddress);
        }
        let mut out = Vec::new();
        for k in keys {
            let e = g.entry_mut(k);
            if matches!(e.target, MapTarget::Object { .. }) {
                e.copy_on_write = true;
                e.needs_copy = true;
            }
            let copy = e.clone();
            copy.reference_target();
            out.push(copy);
        }
        Ok(out)
    }
}

impl Drop for VmMap {
    fn drop(&mut self) {
        // Task exit / last un-share: release every entry's object
        // reference so shadow chains can collapse and cached objects can
        // park or terminate.
        let Some(ctx) = self.ctx.upgrade() else {
            return;
        };
        let entries: Vec<MapEntry> = {
            let mut g = self.inner.lock();
            g.hint = None;
            let mut v = Vec::with_capacity(g.entries.len());
            while let Some((_, e)) = g.entries.pop_first() {
                v.push(e);
            }
            v
        };
        for e in entries {
            if let Some(pmap) = &self.pmap {
                pmap.remove(mach_hw::VAddr(e.start), mach_hw::VAddr(e.end));
            }
            match e.target {
                MapTarget::Object { object, .. } => {
                    object::deallocate(&object, &ctx);
                    // The survivors of this object's chain may now be
                    // collapsible.
                    object::collapse(&object, &ctx);
                }
                MapTarget::Share { map, .. } => drop(map),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectCache;
    use crate::page::ResidentTable;
    use crate::stats::VmStatsAtomic;
    use mach_hw::machine::{Machine, MachineModel};

    fn ctx() -> Arc<CoreRefs> {
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let machdep = mach_pmap::machdep_for(&machine);
        let default_pager = crate::pager::DefaultPager::new(&machine);
        let trace = Arc::new(crate::trace::TraceSink::new(machine.n_cpus()));
        Arc::new(CoreRefs {
            machine,
            machdep,
            resident: Arc::new(ResidentTable::new(4096)),
            cache: Arc::new(ObjectCache::new(8)),
            stats: Arc::new(VmStatsAtomic::default()),
            default_pager,
            page_size: 4096,
            collapse_enabled: std::sync::atomic::AtomicBool::new(true),
            map_indexed: std::sync::atomic::AtomicBool::new(true),
            pager_timeout: std::time::Duration::from_secs(5),
            trace,
            locks: Arc::new(crate::lockstat::LockStats::new()),
            injector: crate::inject::Injector::disabled(),
            profile: Arc::new(crate::profile::Profiler::new(1)),
            health: Arc::new(crate::health::HealthSink::new()),
            ops: Arc::new(crate::ops::OpRecorder::new()),
        })
    }

    fn map(ctx: &Arc<CoreRefs>) -> Arc<VmMap> {
        VmMap::new_task_map(ctx, ctx.machdep.create(), 0, 1 << 30)
    }

    #[test]
    fn allocate_anywhere_finds_space() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 8192, true).unwrap();
        let b = m.allocate(&c, None, 8192, true).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.entry_count(), 2);
        // Non-overlapping.
        assert!(b >= a + 8192 || a >= b + 8192);
    }

    #[test]
    fn allocate_at_fixed_address() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, Some(0x10000), 4096, false).unwrap();
        assert_eq!(a, 0x10000);
        assert_eq!(
            m.allocate(&c, Some(0x10000), 4096, false).unwrap_err(),
            VmError::AlreadyAllocated
        );
        assert_eq!(
            m.allocate(&c, Some(0x10001), 4096, false).unwrap_err(),
            VmError::BadAlignment
        );
    }

    #[test]
    fn deallocate_splits_entries() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, Some(0x10000), 4096 * 4, false).unwrap();
        // Punch a hole in the middle.
        m.deallocate(&c, a + 4096, 4096 * 2).unwrap();
        let regions = m.regions();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].start, a);
        assert_eq!(regions[0].end, a + 4096);
        assert_eq!(regions[1].start, a + 4096 * 3);
        // Reallocate into the hole.
        let b = m.allocate(&c, Some(a + 4096), 4096, false).unwrap();
        assert_eq!(b, a + 4096);
    }

    #[test]
    fn resolve_follows_offsets() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 4, true).unwrap();
        let r = m.resolve(&c, a + 4096 * 2).unwrap();
        assert_eq!(r.offset, 4096 * 2);
        assert_eq!(r.prot, Protection::DEFAULT);
        assert!(!r.needs_copy);
        assert_eq!(
            m.resolve(&c, a + 4096 * 4).unwrap_err(),
            VmError::InvalidAddress
        );
    }

    #[test]
    fn hint_speeds_up_repeat_lookups() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 16, true).unwrap();
        let _ = m.resolve(&c, a).unwrap();
        let misses_before = c.stats.hint_misses.load(Ordering::Relaxed);
        for i in 0..16 {
            let _ = m.resolve(&c, a + i * 4096).unwrap();
        }
        assert_eq!(
            c.stats.hint_misses.load(Ordering::Relaxed),
            misses_before,
            "sequential faults all hit the hint"
        );
        assert!(c.stats.hint_hits.load(Ordering::Relaxed) >= 16);
    }

    /// The hint path is identical in indexed and linear-reference modes:
    /// the same lookup sequence produces the same hit/miss accounting.
    #[test]
    fn hint_accounting_is_mode_independent() {
        let run = |indexed: bool| -> (u64, u64) {
            let c = ctx();
            c.map_indexed
                .store(indexed, std::sync::atomic::Ordering::Relaxed);
            let m = map(&c);
            let a = m.allocate(&c, Some(0x10000), 4096 * 8, false).unwrap();
            let b = m.allocate(&c, Some(0x40000), 4096 * 8, false).unwrap();
            for i in 0..8 {
                let _ = m.resolve(&c, a + i * 4096).unwrap();
            }
            let _ = m.resolve(&c, b).unwrap(); // far jump: hint miss
            let _ = m.resolve(&c, b + 4096).unwrap(); // successor hit
            assert!(m.resolve(&c, 0x8000_0000).is_err()); // miss, no entry
            (
                c.stats.hint_hits.load(Ordering::Relaxed),
                c.stats.hint_misses.load(Ordering::Relaxed),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn protect_clips_and_checks_maximum() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 4, true).unwrap();
        m.protect(&c, a + 4096, 4096, false, Protection::READ)
            .unwrap();
        let regions = m.regions();
        assert_eq!(regions.len(), 3, "protect split the entry");
        assert_eq!(regions[1].prot, Protection::READ);
        // Lower the maximum below current elsewhere: current follows.
        m.protect(&c, a, 4096, true, Protection::READ).unwrap();
        let regions = m.regions();
        assert_eq!(regions[0].max_prot, Protection::READ);
        assert_eq!(regions[0].prot, Protection::READ);
        // Raising current above maximum is refused.
        assert_eq!(
            m.protect(&c, a, 4096, false, Protection::ALL).unwrap_err(),
            VmError::ProtectionFailure
        );
        // Protecting an unallocated range is invalid.
        assert_eq!(
            m.protect(&c, a + 4096 * 4, 4096, false, Protection::READ)
                .unwrap_err(),
            VmError::InvalidAddress
        );
    }

    #[test]
    fn inherit_set_and_reported() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 2, true).unwrap();
        m.inherit(&c, a, 4096, Inheritance::None).unwrap();
        let regions = m.regions();
        assert_eq!(regions[0].inheritance, Inheritance::None);
        assert_eq!(regions[1].inheritance, Inheritance::Copy);
    }

    #[test]
    fn share_entry_is_idempotent() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 2, true).unwrap();
        let (s1, o1, _, _) = m.share_entry(&c, a).unwrap();
        let (s2, o2, _, _) = m.share_entry(&c, a).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(o1, o2);
        assert!(m.regions()[0].shared);
        // Resolving now goes through the sharing map.
        let r = m.resolve(&c, a + 4096).unwrap();
        assert!(Arc::ptr_eq(&r.holder, &s1));
        assert_eq!(r.holder_addr, 4096);
    }

    #[test]
    fn install_shadow_once() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096, true).unwrap();
        let before = m.resolve(&c, a).unwrap().object;
        // Mark COW as vm_copy would.
        let _ = m.copy_entries(&c, a, a + 4096).unwrap();
        assert!(m.resolve(&c, a).unwrap().needs_copy);
        m.install_shadow(&c, a).unwrap();
        let r = m.resolve(&c, a).unwrap();
        assert!(!r.needs_copy);
        assert!(
            !Arc::ptr_eq(&r.object, &before),
            "entry now names the shadow"
        );
        assert_eq!(r.object.chain_length(), 1, "shadow backs onto the original");
        // Second call is a no-op.
        m.install_shadow(&c, a).unwrap();
        assert_eq!(m.resolve(&c, a).unwrap().object.chain_length(), 1);
    }

    #[test]
    fn find_space_skips_gaps_too_small() {
        let c = ctx();
        let m = map(&c);
        m.allocate(&c, Some(0), 4096, false).unwrap();
        m.allocate(&c, Some(8192), 4096, false).unwrap();
        // A 2-page allocation cannot fit in the 1-page hole at 4096.
        let a = m.allocate(&c, None, 8192, true).unwrap();
        assert!(a >= 12288);
        // A 1-page allocation goes into the hole.
        let b = m.allocate(&c, None, 4096, true).unwrap();
        assert_eq!(b, 4096);
    }

    #[test]
    fn simplify_heals_protect_splits() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, None, 4096 * 8, true).unwrap();
        assert_eq!(m.entry_count(), 1);
        // Split the entry three ways...
        m.protect(&c, a + 4096 * 2, 4096 * 2, false, Protection::READ)
            .unwrap();
        assert_eq!(m.entry_count(), 3);
        // ...then restore uniform attributes: the splits heal.
        m.protect(&c, a + 4096 * 2, 4096 * 2, false, Protection::DEFAULT)
            .unwrap();
        assert_eq!(m.entry_count(), 1, "entries coalesced");
        let r = m.regions();
        assert_eq!((r[0].start, r[0].end), (a, a + 4096 * 8));
        // Resolution still works across the healed entry.
        assert_eq!(m.resolve(&c, a + 4096 * 5).unwrap().offset, 4096 * 5);
    }

    #[test]
    fn simplify_does_not_merge_different_objects() {
        let c = ctx();
        let m = map(&c);
        let a = m.allocate(&c, Some(0x10000), 4096, false).unwrap();
        let b = m.allocate(&c, Some(0x11000), 4096, false).unwrap();
        assert_eq!(b, a + 4096);
        // Adjacent but different objects: protect must not merge them.
        m.protect(&c, a, 8192, false, Protection::READ).unwrap();
        assert_eq!(m.entry_count(), 2);
    }

    #[test]
    fn sparse_spaces_cost_nothing() {
        let c = ctx();
        let m = map(&c);
        // A mapping near the top of a 1 GB space; entry count stays tiny.
        let top = (1 << 30) - 4096;
        m.allocate(&c, Some(top), 4096, false).unwrap();
        m.allocate(&c, Some(0), 4096, false).unwrap();
        assert_eq!(m.entry_count(), 2);
        assert!(m.resolve(&c, top).is_ok());
    }

    /// Both lookup modes agree on hit/miss results across a sparse map,
    /// including addresses below the first entry, in gaps, and past the
    /// last entry (wraparound territory for the index's predecessor
    /// query).
    #[test]
    fn indexed_and_linear_lookups_agree() {
        let c = ctx();
        let m = map(&c);
        let starts = [0x0, 0x5000, 0x20000, 0x100000, (1 << 30) - 0x2000];
        for &s in &starts {
            m.allocate(&c, Some(s), 8192, false).unwrap();
        }
        let probe: Vec<u64> = (0..2048).map(|i| (i * 0x3456) & !(4096 - 1)).collect();
        let results = |indexed: bool| -> Vec<bool> {
            c.map_indexed
                .store(indexed, std::sync::atomic::Ordering::Relaxed);
            probe.iter().map(|&a| m.resolve(&c, a).is_ok()).collect()
        };
        assert_eq!(results(true), results(false));
    }
}

#[cfg(test)]
mod share_protect_tests {
    use super::*;
    use crate::kernel::Kernel;
    use mach_hw::machine::{Machine, MachineModel};

    #[test]
    fn set_maximum_applies_through_share_entries() {
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let k = Kernel::boot(&machine);
        let ps = k.page_size();
        let a = k.create_task();
        let addr = a.map().allocate(k.ctx(), None, ps, true).unwrap();
        a.map()
            .inherit(k.ctx(), addr, ps, Inheritance::Shared)
            .unwrap();
        let _b = a.fork();
        // Lower A's maximum below write: current follows, permanently.
        a.map()
            .protect(k.ctx(), addr, ps, true, Protection::READ)
            .unwrap();
        let r = a.map().regions();
        assert_eq!(r[0].max_prot, Protection::READ);
        assert_eq!(r[0].prot, Protection::READ);
        // Raising it back is refused.
        assert_eq!(
            a.map()
                .protect(k.ctx(), addr, ps, false, Protection::DEFAULT)
                .unwrap_err(),
            VmError::ProtectionFailure
        );
        a.user(0, |u| {
            assert!(u.write_u32(addr, 1).is_err());
            u.read_u32(addr).unwrap();
        });
    }
}
