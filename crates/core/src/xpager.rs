//! The external pager interface (paper §3.3, Tables 3-1 and 3-2).
//!
//! "An important feature of Mach's virtual memory is the ability to handle
//! page faults and page-out requests outside of the kernel" — a memory
//! object's managing task (*pager*) receives kernel messages on its pager
//! port and manages the object by sending messages to the kernel's
//! *paging-object-request* port.
//!
//! Kernel → pager (Table 3-1): `pager_init`, `pager_data_request`,
//! `pager_data_unlock`, `pager_data_write`, `pager_create` (plus a
//! termination notice). Pager → kernel (Table 3-2): `pager_data_provided`,
//! `pager_data_unavailable`, `pager_data_lock`, `pager_clean_request`,
//! `pager_flush_request`, `pager_readonly`, `pager_cache`.
//!
//! The kernel side is [`ExternalPagerProxy`] (adapts the message protocol
//! onto the internal [`Pager`] trait) plus a per-object service thread
//! (`spawn_object_service`) that plays the kernel's half. User-state
//! pagers implement [`UserPager`] and run under [`serve_pager`] — see
//! `examples/external_pager.rs`.

use std::fmt;
use std::sync::{Arc, Weak};
use std::time::Duration;

use mach_ipc::{IpcError, Message, MsgField, ReceiveRight, SendRight};

use crate::ctx::CoreRefs;
use crate::inject::{InjectKind, Injector};
use crate::object::VmObject;
use crate::pager::{Pager, PagerIdent, PagerReply};
use crate::trace::{PagerMsg, TraceEvent};
use crate::types::{VmError, VmResult};

/// Message operation codes for the pager protocol.
pub mod ops {
    /// Kernel → pager: initialize a paging object.
    pub const PAGER_INIT: u32 = 1;
    /// Kernel → pager: request data (`pager_data_request`).
    pub const PAGER_DATA_REQUEST: u32 = 2;
    /// Kernel → pager: request an unlock (`pager_data_unlock`).
    pub const PAGER_DATA_UNLOCK: u32 = 3;
    /// Kernel → pager: write dirty data back (`pager_data_write`).
    pub const PAGER_DATA_WRITE: u32 = 4;
    /// Kernel → pager: accept ownership (`pager_create`).
    pub const PAGER_CREATE: u32 = 5;
    /// Kernel → pager: the object is gone.
    pub const PAGER_TERMINATE: u32 = 6;
    /// Kernel → pager: a sequence-numbered clean/flush request finished
    /// (`pager_lock_completed`). Only sent when the request carried a
    /// sequence number — the §6 netmsg-server consistency handshake.
    pub const PAGER_LOCK_COMPLETED: u32 = 7;

    /// Pager → kernel: here is the data (`pager_data_provided`).
    pub const PAGER_DATA_PROVIDED: u32 = 10;
    /// Pager → kernel: no data for that range (`pager_data_unavailable`).
    pub const PAGER_DATA_UNAVAILABLE: u32 = 11;
    /// Pager → kernel: lock/unlock access (`pager_data_lock`).
    pub const PAGER_DATA_LOCK: u32 = 12;
    /// Pager → kernel: write back modified cached data
    /// (`pager_clean_request`).
    pub const PAGER_CLEAN_REQUEST: u32 = 13;
    /// Pager → kernel: destroy cached data (`pager_flush_request`).
    pub const PAGER_FLUSH_REQUEST: u32 = 14;
    /// Pager → kernel: writes must allocate a new object
    /// (`pager_readonly`).
    pub const PAGER_READONLY: u32 = 15;
    /// Pager → kernel: retain the object when unreferenced
    /// (`pager_cache`).
    pub const PAGER_CACHE: u32 = 16;
}

/// Kernel-side adapter: a [`Pager`] that forwards to a user-state pager
/// over its port.
pub struct ExternalPagerProxy {
    pager_port: SendRight,
    request_port: SendRight,
    base_offset: u64,
    injector: Arc<Injector>,
}

impl fmt::Debug for ExternalPagerProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExternalPagerProxy")
            .field("pager_port", &self.pager_port)
            .finish()
    }
}

impl ExternalPagerProxy {
    /// A proxy speaking to `pager_port`, telling it to reply on
    /// `request_port`; object offsets are shifted by `base_offset`.
    pub fn new(
        pager_port: SendRight,
        request_port: SendRight,
        base_offset: u64,
    ) -> ExternalPagerProxy {
        ExternalPagerProxy {
            pager_port,
            request_port,
            base_offset,
            injector: Injector::disabled(),
        }
    }

    /// Attach a fault [`Injector`]; kernel→pager traffic then becomes
    /// subject to the plan's `pager_*` and `msg_*` rates.
    #[must_use]
    pub fn with_injector(mut self, injector: Arc<Injector>) -> ExternalPagerProxy {
        self.injector = injector;
        self
    }
}

impl Pager for ExternalPagerProxy {
    fn data_request(&self, object_id: u64, offset: u64, length: u64) -> PagerReply {
        // Injection points, checked in a fixed order so one seed replays
        // the same decisions: sudden pager death, a stalled pager, a lost
        // request (Table 3-1 message drop), and a slow transport.
        if self
            .injector
            .fire(InjectKind::PagerDeath, object_id, offset)
        {
            return PagerReply::Error(VmError::PagerDied);
        }
        if self
            .injector
            .fire(InjectKind::PagerStall, object_id, offset)
            || self.injector.fire(InjectKind::MsgDrop, object_id, offset)
        {
            // The request never reaches the pager; the fault must bound
            // its wait with `pager_timeout` (paper §3.3: the kernel may
            // not trust a pager to reply).
            return PagerReply::Pending;
        }
        if self.injector.fire(InjectKind::MsgDelay, object_id, offset) {
            std::thread::sleep(self.injector.delay());
        }
        // The trailing field is the causal id of the faulting thread; a
        // pager that echoes it on the reply lets the kernel attribute the
        // reply to the fault that caused the request (old pagers that
        // ignore it are still protocol-conformant — trailing fields are
        // optional by construction).
        let msg = Message::new(ops::PAGER_DATA_REQUEST)
            .with(MsgField::U64(object_id))
            .with(MsgField::Port(self.request_port.clone()))
            .with(MsgField::U64(offset + self.base_offset))
            .with(MsgField::U64(length))
            .with(MsgField::U64(u64::from(
                crate::types::Protection::READ.bits(),
            )))
            .with(MsgField::U64(crate::trace::current_causal()));
        match self.pager_port.send(msg) {
            Ok(()) => PagerReply::Pending,
            Err(IpcError::DeadPort) => PagerReply::Error(VmError::PagerDied),
            Err(IpcError::WouldBlock) => unreachable!("blocking send"),
        }
    }

    fn data_write(&self, object_id: u64, offset: u64, data: Vec<u8>) -> VmResult<()> {
        // Deliberately NOT an injection point for drops/duplicates: the
        // only copy of a dirty page rides in this message, so losing it
        // silently would corrupt data rather than exercise recovery.
        match self.pager_port.send(
            Message::new(ops::PAGER_DATA_WRITE)
                .with(MsgField::U64(object_id))
                .with(MsgField::U64(offset + self.base_offset))
                .with(MsgField::Bytes(Arc::new(data))),
        ) {
            Ok(()) => Ok(()),
            Err(IpcError::DeadPort) => Err(VmError::PagerDied),
            Err(IpcError::WouldBlock) => unreachable!("blocking send"),
        }
    }

    fn data_unlock(&self, object_id: u64, offset: u64, length: u64, access: u8) {
        let _ = self.pager_port.send(
            Message::new(ops::PAGER_DATA_UNLOCK)
                .with(MsgField::U64(object_id))
                .with(MsgField::Port(self.request_port.clone()))
                .with(MsgField::U64(offset + self.base_offset))
                .with(MsgField::U64(length))
                .with(MsgField::U64(u64::from(access)))
                .with(MsgField::U64(crate::trace::current_causal())),
        );
    }

    fn terminate(&self, object_id: u64) {
        let _ = self
            .pager_port
            .send(Message::new(ops::PAGER_TERMINATE).with(MsgField::U64(object_id)));
    }

    fn ident(&self) -> Option<PagerIdent> {
        Some(PagerIdent::External {
            port: self.pager_port.id(),
            offset: self.base_offset,
        })
    }

    fn port_id(&self, _object_id: u64) -> u64 {
        self.pager_port.id()
    }
}

/// Spawn the kernel's service thread for one externally-paged object: it
/// receives Table 3-2 messages on the paging-object-request port and acts
/// on the object until the object dies.
pub(crate) fn spawn_object_service(
    ctx: Arc<CoreRefs>,
    obj: Weak<VmObject>,
    rx: ReceiveRight,
    base_offset: u64,
    pager_port: SendRight,
) {
    std::thread::Builder::new()
        .name("mach-object-service".into())
        .spawn(move || loop {
            let msg = rx.receive_timeout(Duration::from_millis(100));
            let Some(o) = obj.upgrade() else { return };
            if o.lock().terminated {
                return;
            }
            if pager_port.is_dead() {
                // The managing task is gone: quarantine the object so
                // in-flight and future faults fail fast instead of
                // waiting out the full pager timeout.
                crate::object::quarantine(&o, &ctx);
                return;
            }
            let Some(msg) = msg else { continue };
            handle_pager_message(&ctx, &o, &msg, base_offset, &pager_port);
        })
        .expect("spawn object service thread");
}

fn handle_pager_message(
    ctx: &CoreRefs,
    obj: &Arc<VmObject>,
    msg: &Message,
    base: u64,
    pager_port: &SendRight,
) {
    // Table 3-2 (pager → kernel) injection points: a dropped reply is
    // never processed (the waiting fault must time out), a delayed one
    // is handled late, a duplicated one is handled twice — the kernel
    // must treat every pager message as at-least-once delivery.
    let op = u64::from(msg.op());
    if ctx.injector.fire(InjectKind::MsgDrop, obj.id(), op) {
        return;
    }
    if ctx.injector.fire(InjectKind::MsgDelay, obj.id(), op) {
        std::thread::sleep(ctx.injector.delay());
    }
    if ctx.injector.fire(InjectKind::MsgDuplicate, obj.id(), op) {
        handle_pager_message_once(ctx, obj, msg, base, pager_port);
    }
    handle_pager_message_once(ctx, obj, msg, base, pager_port);
}

/// Optional trailing causal id: pagers that echo the request's causal id
/// append it after the documented fields; older pagers simply omit it and
/// the reply attributes to causal 0 (untracked).
fn tail_causal(msg: &Message, idx: usize) -> u64 {
    if msg.fields().len() > idx {
        msg.u64(idx)
    } else {
        0
    }
}

fn handle_pager_message_once(
    ctx: &CoreRefs,
    obj: &Arc<VmObject>,
    msg: &Message,
    base: u64,
    pager_port: &SendRight,
) {
    let _sp = ctx.prof_span(crate::profile::SpanKind::PagerService);
    let page = ctx.page_size;
    match msg.op() {
        ops::PAGER_DATA_PROVIDED => {
            // [offset, data, lock_value]. The trace entry is emitted only
            // when the supply actually lands, so a duplicated message does
            // not break the DataRequest/DataProvided double-entry books —
            // and it is emitted *before* the fill wakes the waiting
            // faulter, so a trace snapshot taken the instant the fault
            // returns already contains the reply record.
            let offset = msg.u64(0) - base;
            let data = msg.bytes(1);
            let off = ctx.trunc_page(offset);
            if let Some(p) = crate::fault::claim_supply(ctx, obj, off) {
                ctx.trace_emit(
                    0,
                    obj.id(),
                    off,
                    TraceEvent::PagerReply {
                        msg: PagerMsg::DataProvided,
                        pager: pager_port.id(),
                        causal: tail_causal(msg, 3),
                    },
                );
                crate::fault::fill_and_release(ctx, obj, p, Some(data), false);
            }
        }
        ops::PAGER_DATA_UNAVAILABLE => {
            // [offset, size] — zero-fill the whole range. As above, only
            // a supply that acts is traced, and the trace precedes the
            // first wakeup.
            let offset = ctx.trunc_page(msg.u64(0) - base);
            let size = ctx.round_page(msg.u64(1)).max(page);
            let mut claimed = Vec::new();
            let mut off = offset;
            while off < offset + size {
                if let Some(p) = crate::fault::claim_supply(ctx, obj, off) {
                    claimed.push((off, p));
                }
                off += page;
            }
            if !claimed.is_empty() {
                ctx.trace_emit(
                    0,
                    obj.id(),
                    offset,
                    TraceEvent::PagerReply {
                        msg: PagerMsg::DataUnavailable,
                        pager: pager_port.id(),
                        causal: tail_causal(msg, 2),
                    },
                );
                for (_, p) in claimed {
                    crate::fault::fill_and_release(ctx, obj, p, None, false);
                }
            }
        }
        ops::PAGER_DATA_LOCK => {
            // [offset, length, lock_value]: record the revoked accesses
            // per page, pull matching hardware permissions, and wake any
            // faults waiting for an unlock (lock_value == 0).
            let offset = ctx.trunc_page(msg.u64(0) - base);
            let length = ctx.round_page(msg.u64(1)).max(page);
            let revoke = crate::types::Protection::from_bits(msg.u64(2) as u8);
            ctx.trace_emit(
                0,
                obj.id(),
                offset,
                TraceEvent::PagerReply {
                    msg: PagerMsg::DataLock,
                    pager: pager_port.id(),
                    causal: tail_causal(msg, 3),
                },
            );
            {
                let mut s = obj.lock();
                let mut off = offset;
                while off < offset + length {
                    if revoke.is_none() {
                        s.locks.remove(&off);
                    } else {
                        s.locks.insert(off, revoke.bits());
                    }
                    off += page;
                }
            }
            let pages = resident_range(obj, offset, length);
            for (_, p) in pages {
                let pa = p.base(page);
                if revoke.contains(crate::types::Protection::READ) {
                    ctx.machdep.remove_all(pa, page);
                } else if revoke.contains(crate::types::Protection::WRITE) {
                    ctx.machdep.copy_on_write(pa, page);
                }
            }
            if revoke.is_none() {
                // Unlock: wake waiting faults.
                let _s = obj.lock();
                obj.busy_wakeup.notify_all();
            }
        }
        ops::PAGER_CLEAN_REQUEST => {
            // [offset, length, seq?]: push modified cached pages back. A
            // third field is an optional sequence number; when present the
            // kernel acknowledges completion with `pager_lock_completed`
            // echoing it (the §6 invalidation handshake).
            let offset = ctx.trunc_page(msg.u64(0) - base);
            let length = ctx.round_page(msg.u64(1)).max(page);
            let seq = (msg.fields().len() > 2).then(|| msg.u64(2));
            ctx.trace_emit(
                0,
                obj.id(),
                offset,
                TraceEvent::PagerReply {
                    msg: PagerMsg::CleanRequest,
                    pager: pager_port.id(),
                    causal: 0,
                },
            );
            for (off, p) in resident_range(obj, offset, length) {
                let pa = p.base(page);
                let dirty =
                    ctx.resident.with_page(p, |i| i.dirty) || ctx.machdep.is_modified(pa, page);
                if !dirty {
                    continue;
                }
                let mut buf = vec![0u8; page as usize];
                ctx.machine.phys().read(pa, &mut buf).expect("resident");
                let _ = pager_port.send(
                    Message::new(ops::PAGER_DATA_WRITE)
                        .with(MsgField::U64(obj.id()))
                        .with(MsgField::U64(off + base))
                        .with(MsgField::Bytes(Arc::new(buf))),
                );
                ctx.trace_emit(
                    0,
                    obj.id(),
                    off,
                    TraceEvent::PagerRequest {
                        msg: PagerMsg::DataWrite,
                        pager: pager_port.id(),
                        causal: 0,
                    },
                );
                ctx.machdep.clear_modify(pa, page);
                ctx.resident.with_page(p, |i| i.dirty = false);
            }
            if let Some(seq) = seq {
                send_lock_completed(ctx, obj, pager_port, offset + base, length, seq);
            }
        }
        ops::PAGER_FLUSH_REQUEST => {
            // [offset, length, seq?]: destroy cached pages; an optional
            // sequence number is acknowledged as for the clean request.
            let offset = ctx.trunc_page(msg.u64(0) - base);
            let length = ctx.round_page(msg.u64(1)).max(page);
            let seq = (msg.fields().len() > 2).then(|| msg.u64(2));
            ctx.trace_emit(
                0,
                obj.id(),
                offset,
                TraceEvent::PagerReply {
                    msg: PagerMsg::FlushRequest,
                    pager: pager_port.id(),
                    causal: 0,
                },
            );
            for (off, p) in resident_range(obj, offset, length) {
                // Atomic claim: a busy page belongs to an in-flight fill
                // or pageout, a wired one to its wirer — skip both. The
                // claim excludes a concurrent reclaimer from freeing the
                // same frame after we checked it.
                if !ctx.resident.claim_teardown(p, false) {
                    continue;
                }
                let mut s = obj.lock();
                if s.resident.get(&off) == Some(&p) {
                    s.resident.remove(&off);
                    ctx.resident.clear_identity(p);
                    drop(s);
                    let pa = p.base(page);
                    ctx.machdep.remove_all(pa, page);
                    ctx.machdep.clear_modify(pa, page);
                    ctx.machdep.clear_reference(pa, page);
                    ctx.resident.free_page(p);
                    obj.busy_wakeup.notify_all();
                } else {
                    drop(s);
                    ctx.resident.release_evict(p);
                }
            }
            if let Some(seq) = seq {
                send_lock_completed(ctx, obj, pager_port, offset + base, length, seq);
            }
        }
        ops::PAGER_READONLY => {
            ctx.trace_emit(
                0,
                obj.id(),
                0,
                TraceEvent::PagerReply {
                    msg: PagerMsg::Readonly,
                    pager: pager_port.id(),
                    causal: 0,
                },
            );
            obj.lock().pager_readonly = true;
        }
        ops::PAGER_CACHE => {
            ctx.trace_emit(
                0,
                obj.id(),
                0,
                TraceEvent::PagerReply {
                    msg: PagerMsg::Cache,
                    pager: pager_port.id(),
                    causal: 0,
                },
            );
            obj.lock().can_persist = msg.bool(0);
        }
        other => {
            debug_assert!(false, "unknown pager→kernel op {other}");
        }
    }
}

/// Acknowledge a sequence-numbered clean/flush request:
/// `pager_lock_completed [offset, length, seq]` back on the pager port.
fn send_lock_completed(
    ctx: &CoreRefs,
    obj: &Arc<VmObject>,
    pager_port: &SendRight,
    offset: u64,
    length: u64,
    seq: u64,
) {
    let _ = pager_port.send(
        Message::new(ops::PAGER_LOCK_COMPLETED)
            .with(MsgField::U64(offset))
            .with(MsgField::U64(length))
            .with(MsgField::U64(seq)),
    );
    ctx.trace_emit(
        0,
        obj.id(),
        offset,
        TraceEvent::PagerRequest {
            msg: PagerMsg::LockCompleted,
            pager: pager_port.id(),
            causal: 0,
        },
    );
}

fn resident_range(
    obj: &Arc<VmObject>,
    offset: u64,
    length: u64,
) -> Vec<(u64, crate::page::PageId)> {
    let s = obj.lock();
    s.resident
        .range(offset..offset + length)
        .map(|(&o, &p)| (o, p))
        .collect()
}

// ----------------------------------------------------------------------
// User-state side
// ----------------------------------------------------------------------

/// What a user-state pager implements; [`serve_pager`] adapts it onto the
/// message protocol. The trivial read/write object of paper §3.3:
/// "Simple pagers can be implemented by largely ignoring the more
/// sophisticated interface calls."
pub trait UserPager: Send {
    /// Produce `length` bytes at `offset`, or `None` for
    /// `pager_data_unavailable` (zero fill).
    fn read(&mut self, offset: u64, length: u64) -> Option<Vec<u8>>;

    /// Accept a page written back at pageout time.
    fn write(&mut self, offset: u64, data: &[u8]);

    /// Called once with the object id and kernel request port
    /// (`pager_init`).
    fn init(&mut self, _object_id: u64, _request_port: &SendRight) {}
}

/// Run `pager` against messages arriving on `rx` until the kernel sends
/// `pager_terminate` (or every sender disappears). This is the
/// `pager_server` message loop of Table 3-1. Returns the pager for
/// inspection.
pub fn serve_pager<P: UserPager>(rx: &ReceiveRight, mut pager: P) -> P {
    let mut request_port: Option<SendRight> = None;
    loop {
        let Some(msg) = rx.receive_timeout(Duration::from_millis(200)) else {
            continue;
        };
        match msg.op() {
            ops::PAGER_INIT | ops::PAGER_CREATE => {
                let object_id = msg.u64(0);
                let port = msg.port(1).clone();
                pager.init(object_id, &port);
                request_port = Some(port);
            }
            ops::PAGER_DATA_REQUEST => {
                // [object_id, request_port, offset, length, access, causal?]
                // — the trailing causal id, when present, is echoed back on
                // the reply so the kernel can attribute it to the fault.
                let reply_to = msg.port(1).clone();
                let offset = msg.u64(2);
                let length = msg.u64(3);
                let causal = tail_causal(&msg, 5);
                let reply = match pager.read(offset, length) {
                    Some(data) => Message::new(ops::PAGER_DATA_PROVIDED)
                        .with(MsgField::U64(offset))
                        .with(MsgField::Bytes(Arc::new(data)))
                        .with(MsgField::U64(0))
                        .with(MsgField::U64(causal)),
                    None => Message::new(ops::PAGER_DATA_UNAVAILABLE)
                        .with(MsgField::U64(offset))
                        .with(MsgField::U64(length))
                        .with(MsgField::U64(causal)),
                };
                if reply_to.send(reply).is_err() {
                    return pager;
                }
                let _ = &request_port;
            }
            ops::PAGER_DATA_UNLOCK => {
                // [object_id, request_port, offset, length, access, causal?]:
                // the simple pager always grants the unlock, echoing the
                // causal id when the kernel supplied one.
                let reply_to = msg.port(1).clone();
                let _ = reply_to.send(
                    Message::new(ops::PAGER_DATA_LOCK)
                        .with(MsgField::U64(msg.u64(2)))
                        .with(MsgField::U64(msg.u64(3)))
                        .with(MsgField::U64(0))
                        .with(MsgField::U64(tail_causal(&msg, 5))),
                );
            }
            ops::PAGER_DATA_WRITE => {
                let offset = msg.u64(1);
                pager.write(offset, msg.bytes(2));
            }
            ops::PAGER_LOCK_COMPLETED => {
                // Acknowledgement of a sequence-numbered clean/flush; the
                // simple pager never sends one, but tolerate it.
            }
            ops::PAGER_TERMINATE => return pager,
            other => {
                debug_assert!(false, "unknown kernel→pager op {other}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    use mach_hw::machine::{Machine, MachineModel};
    use mach_ipc::Port;
    use std::collections::HashMap;

    /// A user-state pager serving a deterministic pattern and recording
    /// write-backs.
    struct PatternPager {
        pattern: u8,
        writes: HashMap<u64, Vec<u8>>,
        hole_at: Option<u64>,
    }

    impl UserPager for PatternPager {
        fn read(&mut self, offset: u64, length: u64) -> Option<Vec<u8>> {
            if self.hole_at == Some(offset) {
                return None; // data unavailable → zero fill
            }
            if let Some(w) = self.writes.get(&offset) {
                return Some(w.clone());
            }
            Some(
                (0..length)
                    .map(|i| self.pattern.wrapping_add((offset + i) as u8))
                    .collect(),
            )
        }

        fn write(&mut self, offset: u64, data: &[u8]) {
            self.writes.insert(offset, data.to_vec());
        }
    }

    fn boot() -> Arc<Kernel> {
        Kernel::boot(&Machine::boot(MachineModel::micro_vax_ii()))
    }

    #[test]
    fn external_pager_supplies_data_on_fault() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("pattern-pager", 32);
        let server = std::thread::spawn(move || {
            serve_pager(
                &pager_rx,
                PatternPager {
                    pattern: 3,
                    writes: HashMap::new(),
                    hole_at: None,
                },
            )
        });
        let addr = k
            .allocate_with_pager(&task, None, 4 * ps, true, pager_tx.clone(), 0)
            .unwrap();
        task.user(0, |u| {
            // Offset 0 byte 0 → 3; offset ps byte 0 → 3 + ps (mod 256).
            let b0 = u.read_bytes(addr, 4).unwrap();
            assert_eq!(b0[0], 3);
            assert_eq!(b0[1], 4);
            let b1 = u.read_bytes(addr + ps, 1).unwrap();
            assert_eq!(b1[0], 3u8.wrapping_add(ps as u8));
        });
        // Dropping the task terminates the object, stopping the server.
        drop(task);
        let pager = server.join().unwrap();
        assert!(pager.writes.is_empty());
    }

    #[test]
    fn external_pager_data_unavailable_zero_fills() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("holey-pager", 32);
        let server = std::thread::spawn(move || {
            serve_pager(
                &pager_rx,
                PatternPager {
                    pattern: 9,
                    writes: HashMap::new(),
                    hole_at: Some(0),
                },
            )
        });
        let addr = k
            .allocate_with_pager(&task, None, 2 * ps, true, pager_tx, 0)
            .unwrap();
        task.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 0, "hole is zero filled");
            assert_ne!(u.read_u32(addr + ps).unwrap(), 0);
        });
        drop(task);
        server.join().unwrap();
    }

    #[test]
    fn pageout_writes_back_to_external_pager() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("writeback-pager", 32);
        let server = std::thread::spawn(move || {
            serve_pager(
                &pager_rx,
                PatternPager {
                    pattern: 0,
                    writes: HashMap::new(),
                    hole_at: None,
                },
            )
        });
        let addr = k
            .allocate_with_pager(&task, None, 2 * ps, true, pager_tx, 0)
            .unwrap();
        task.user(0, |u| {
            u.write_u32(addr, 0xDEAD_BEEF).unwrap();
        });
        // Evict everything we can; the dirty page must reach the pager.
        for _ in 0..4 {
            k.reclaim(64);
        }
        // Refault: data comes back from the pager's recorded write.
        task.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 0xDEAD_BEEF);
        });
        drop(task);
        let pager = server.join().unwrap();
        assert!(
            pager.writes.contains_key(&0),
            "pager received the written page"
        );
        assert_eq!(&pager.writes[&0][..4], &0xDEAD_BEEFu32.to_le_bytes());
    }

    #[test]
    fn base_offset_shifts_pager_view() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("offset-pager", 32);
        let server = std::thread::spawn(move || {
            serve_pager(
                &pager_rx,
                PatternPager {
                    pattern: 0,
                    writes: HashMap::new(),
                    hole_at: None,
                },
            )
        });
        // Map with base offset = one page: object offset 0 == pager
        // offset ps.
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, ps)
            .unwrap();
        task.user(0, |u| {
            let b = u.read_bytes(addr, 1).unwrap();
            assert_eq!(b[0], ps as u8, "pattern evaluated at pager offset ps");
        });
        drop(task);
        server.join().unwrap();
    }

    #[test]
    fn unresponsive_pager_times_out_per_boot_option() {
        // The pager port is alive but never answers. With the boot-time
        // timeout shrunk, the fault fails fast instead of hanging 5 s.
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let mut opts = crate::BootOptions::for_machine(&machine);
        opts.pager_timeout = Duration::from_millis(50);
        let k = Kernel::boot_with(&machine, opts);
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, _pager_rx) = Port::allocate("mute", 4);
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, 0)
            .unwrap();
        let start = std::time::Instant::now();
        let r = task.user(0, |u| u.read_u32(addr));
        assert_eq!(r.unwrap_err(), crate::types::VmError::PagerDied);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shrunken timeout took effect"
        );
    }

    #[test]
    fn pager_death_mid_fault_wakes_quickly_via_quarantine() {
        // A fault is parked waiting on a pager that dies mid-protocol.
        // The service thread notices the dead port within its 100 ms poll,
        // quarantines the object, and the fault must wake *immediately* —
        // far inside the 3 s pager timeout it would otherwise burn.
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let mut opts = crate::BootOptions::for_machine(&machine);
        opts.pager_timeout = Duration::from_secs(3);
        let k = Kernel::boot_with(&machine, opts);
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("dies-mid-fault", 8);
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, 0)
            .unwrap();
        // Swallow the init message, then kill the pager 150 ms after the
        // fault has blocked on its (never-coming) reply.
        let killer = std::thread::spawn(move || {
            while pager_rx
                .receive_timeout(Duration::from_millis(50))
                .is_some()
            {}
            drop(pager_rx);
        });
        let start = std::time::Instant::now();
        let r = task.user(0, |u| u.read_u32(addr));
        let waited = start.elapsed();
        killer.join().unwrap();
        assert_eq!(r.unwrap_err(), crate::types::VmError::PagerDied);
        assert!(
            waited < Duration::from_secs(1),
            "quarantine woke the fault fast, not after the 3 s timeout (took {waited:?})"
        );
        assert!(k.statistics().pager_deaths >= 1, "death was counted");
        // The quarantined object rejects new faults immediately.
        let start = std::time::Instant::now();
        let r = task.user(0, |u| u.read_u32(addr + 4));
        assert_eq!(r.unwrap_err(), crate::types::VmError::PagerDied);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn dead_pager_port_fails_cleanly() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("doomed", 4);
        drop(pager_rx);
        assert_eq!(
            k.allocate_with_pager(&task, None, ps, true, pager_tx, 0)
                .unwrap_err(),
            crate::types::VmError::PagerDied
        );
    }

    #[test]
    fn data_lock_blocks_fault_until_unlock() {
        // A pager locks a page against writes; a faulting task blocks in
        // pager_data_unlock until the pager grants pager_data_lock(0).
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("locking-pager", 32);
        let unlock_delay = Duration::from_millis(120);
        let server = std::thread::spawn(move || {
            let mut request: Option<SendRight> = None;
            let mut unlocks = 0u32;
            loop {
                let Some(m) = pager_rx.receive_timeout(Duration::from_secs(3)) else {
                    return unlocks;
                };
                match m.op() {
                    ops::PAGER_INIT => request = Some(m.port(1).clone()),
                    ops::PAGER_DATA_REQUEST => {
                        let req = m.port(1).clone();
                        let offset = m.u64(2);
                        // Provide the data, then immediately write-lock it.
                        let _ = req.send(
                            Message::new(ops::PAGER_DATA_PROVIDED)
                                .with(MsgField::U64(offset))
                                .with(MsgField::Bytes(Arc::new(vec![5u8; 4096])))
                                .with(MsgField::U64(0)),
                        );
                        let _ = req.send(
                            Message::new(ops::PAGER_DATA_LOCK)
                                .with(MsgField::U64(offset))
                                .with(MsgField::U64(4096))
                                .with(MsgField::U64(u64::from(
                                    crate::types::Protection::WRITE.bits(),
                                ))),
                        );
                    }
                    ops::PAGER_DATA_UNLOCK => {
                        unlocks += 1;
                        // Grant after a delay, so the fault visibly waits.
                        std::thread::sleep(unlock_delay);
                        let req = request.clone().or_else(|| Some(m.port(1).clone())).unwrap();
                        let _ = req.send(
                            Message::new(ops::PAGER_DATA_LOCK)
                                .with(MsgField::U64(m.u64(2)))
                                .with(MsgField::U64(m.u64(3)))
                                .with(MsgField::U64(0)),
                        );
                    }
                    ops::PAGER_TERMINATE => return unlocks,
                    _ => {}
                }
            }
        });
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, 0)
            .unwrap();
        task.user(0, |u| {
            // Read works (only WRITE is locked)...
            assert_eq!(u.read_u32(addr).unwrap(), 0x0505_0505);
            // Let the service thread register the lock that followed the
            // data (the protocol is asynchronous, as on real Mach).
            std::thread::sleep(Duration::from_millis(60));
            // ...the write must wait for the pager's unlock grant.
            let t0 = std::time::Instant::now();
            u.write_u32(addr, 7).unwrap();
            assert!(
                t0.elapsed() >= unlock_delay,
                "write returned before the pager unlocked"
            );
            assert_eq!(u.read_u32(addr).unwrap(), 7);
        });
        drop(task);
        let unlocks = server.join().unwrap();
        assert!(unlocks >= 1, "the kernel sent pager_data_unlock");
    }

    #[test]
    fn pager_readonly_redirects_writes_to_new_object() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("readonly-pager", 32);
        let server = std::thread::spawn(move || {
            let mut announced = false;
            loop {
                let Some(m) = pager_rx.receive_timeout(Duration::from_secs(3)) else {
                    return;
                };
                match m.op() {
                    ops::PAGER_INIT => {
                        let req = m.port(1).clone();
                        let _ = req.send(Message::new(ops::PAGER_READONLY));
                        announced = true;
                    }
                    ops::PAGER_DATA_REQUEST => {
                        let req = m.port(1).clone();
                        let _ = req.send(
                            Message::new(ops::PAGER_DATA_PROVIDED)
                                .with(MsgField::U64(m.u64(2)))
                                .with(MsgField::Bytes(Arc::new(vec![9u8; 4096])))
                                .with(MsgField::U64(0)),
                        );
                    }
                    ops::PAGER_DATA_WRITE => {
                        panic!("a pager_readonly object must never be written back");
                    }
                    ops::PAGER_TERMINATE => {
                        assert!(announced);
                        return;
                    }
                    _ => {}
                }
            }
        });
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, 0)
            .unwrap();
        // Let the service thread process PAGER_READONLY.
        std::thread::sleep(Duration::from_millis(100));
        task.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 0x0909_0909);
            // The write lands in a fresh shadow object, not the pager's.
            u.write_u32(addr, 1).unwrap();
            assert_eq!(u.read_u32(addr).unwrap(), 1);
        });
        let r = task.map().resolve(k.ctx(), addr).unwrap();
        assert!(
            r.object.lock().pager.is_none() || r.object.chain_length() > 0,
            "entry now names a shadow over the readonly object"
        );
        // Evicting everything must write to the *default* pager only.
        while k.reclaim(32) > 0 {}
        task.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 1));
        drop(task);
        server.join().unwrap();
    }

    #[test]
    fn clean_and_flush_requests() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("clean-flush", 32);
        let (obs_tx, obs_rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let ctx_ps = ps;
        let server = std::thread::spawn(move || {
            let mut request: Option<SendRight> = None;
            loop {
                let Some(m) = pager_rx.receive_timeout(Duration::from_secs(3)) else {
                    return;
                };
                match m.op() {
                    ops::PAGER_INIT => request = Some(m.port(1).clone()),
                    ops::PAGER_DATA_REQUEST => {
                        let req = m.port(1).clone();
                        let _ = req.send(
                            Message::new(ops::PAGER_DATA_PROVIDED)
                                .with(MsgField::U64(m.u64(2)))
                                .with(MsgField::Bytes(Arc::new(vec![1u8; ctx_ps as usize])))
                                .with(MsgField::U64(0)),
                        );
                    }
                    ops::PAGER_DATA_WRITE => {
                        obs_tx.send(m.bytes(2).to_vec()).unwrap();
                        // After observing the clean, flush the cache copy.
                        if let Some(req) = &request {
                            let _ = req.send(
                                Message::new(ops::PAGER_FLUSH_REQUEST)
                                    .with(MsgField::U64(m.u64(1)))
                                    .with(MsgField::U64(ctx_ps)),
                            );
                        }
                    }
                    ops::PAGER_TERMINATE => return,
                    _ => {}
                }
            }
        });
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx.clone(), 0)
            .unwrap();
        task.user(0, |u| u.write_u32(addr, 0xAB).unwrap());
        // Ask the kernel (as the pager would) to clean the range.
        let r = task.map().resolve(k.ctx(), addr).unwrap();
        let obj = r.object;
        // Send a clean request through the pager's request port path by
        // reaching the service thread via the object's proxy: simplest is
        // to emulate what the pager would do — but the request port is
        // internal, so drive the handler through a synthetic flow: dirty
        // page + reclaim also produces PAGER_DATA_WRITE. Use reclaim.
        drop(obj);
        while k.reclaim(32) > 0 {}
        let written = obs_rx
            .recv_timeout(Duration::from_secs(3))
            .expect("pager received the dirty page");
        assert_eq!(&written[..4], &0xABu32.to_le_bytes());
        // The flush request destroyed the cached copy; refault re-requests.
        let pageins0 = k.statistics().pageins;
        task.user(0, |u| {
            let _ = u.read_u32(addr).unwrap();
        });
        assert!(
            k.statistics().pageins > pageins0,
            "flush forced a re-request"
        );
        drop(task);
        server.join().unwrap();
    }

    #[test]
    fn pager_cache_message_sets_persistence() {
        let k = boot();
        let task = k.create_task();
        let ps = k.page_size();
        let (pager_tx, pager_rx) = Port::allocate("cache-me", 32);
        // Minimal manual pager: answer init + first request, then ask the
        // kernel to cache the object.
        let ctx = Arc::clone(k.ctx());
        let server = std::thread::spawn(move || {
            let mut req: Option<SendRight>;
            loop {
                let Some(m) = pager_rx.receive_timeout(Duration::from_secs(2)) else {
                    return;
                };
                match m.op() {
                    ops::PAGER_INIT => {
                        req = Some(m.port(1).clone());
                        // Immediately request caching (Table 3-2).
                        let _ = req
                            .as_ref()
                            .unwrap()
                            .send(Message::new(ops::PAGER_CACHE).with(MsgField::Bool(true)));
                    }
                    ops::PAGER_DATA_REQUEST => {
                        let reply = m.port(1).clone();
                        let _ = reply.send(
                            Message::new(ops::PAGER_DATA_PROVIDED)
                                .with(MsgField::U64(m.u64(2)))
                                .with(MsgField::Bytes(Arc::new(vec![7u8; ctx.page_size as usize])))
                                .with(MsgField::U64(0)),
                        );
                    }
                    ops::PAGER_TERMINATE => return,
                    _ => {}
                }
            }
        });
        let addr = k
            .allocate_with_pager(&task, None, ps, true, pager_tx, 0)
            .unwrap();
        task.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 0x0707_0707);
        });
        // Give the service thread a beat to process PAGER_CACHE.
        std::thread::sleep(Duration::from_millis(100));
        drop(task);
        assert_eq!(k.object_cache_len(), 1, "object parked, not terminated");
        // Reap it so the server sees termination and exits.
        while k.ctx().cache.reap_one(k.ctx()) {}
        server.join().unwrap();
    }
}
