//! Pagers: the managers of memory-object backing store (paper §3.3).
//!
//! "Mach currently provides some basic paging services inside the kernel.
//! Memory with no pager is automatically zero filled, and page-out is done
//! to a default pager. The current inode pager utilizes 4.3bsd UNIX file
//! systems and eliminates the traditional Berkeley UNIX need for separate
//! paging partitions."
//!
//! Three pagers live here: the [`DefaultPager`] (anonymous memory), the
//! [`InodePager`] (memory-mapped files over `mach-fs`), and — in
//! [`crate::xpager`] — the proxy for **external, user-state pagers**
//! reached over `mach-ipc` ports.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mach_fs::{FileId, SimFs};
use mach_hw::machine::Machine;
use parking_lot::Mutex;

use crate::types::{VmError, VmResult};

/// Map a filesystem error onto the VM error a fault/pageout caller can
/// act on: transient device errors are retryable, permanent ones are not.
fn map_fs_error(e: mach_fs::FsError) -> VmError {
    match e {
        mach_fs::FsError::Io(mach_fs::IoError::Transient) => VmError::DeviceBusy,
        mach_fs::FsError::Io(mach_fs::IoError::Permanent) => VmError::DeviceError,
        mach_fs::FsError::NoSpace => VmError::ResourceShortage,
        _ => VmError::DataUnavailable,
    }
}

/// Identity of a pager-backed object, used as the object-cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PagerIdent {
    /// A file of a particular filesystem instance.
    Inode {
        /// Filesystem instance (pointer identity).
        fs: usize,
        /// File within it.
        file: u64,
    },
    /// An external pager port.
    External {
        /// The pager port id.
        port: u64,
        /// The base offset given at `vm_allocate_with_pager`.
        offset: u64,
    },
}

/// What a pager answered to a data request.
#[derive(Debug)]
pub enum PagerReply {
    /// The page's bytes (must be exactly one page).
    Data(Vec<u8>),
    /// The pager holds no data for the range: zero-fill
    /// (`pager_data_unavailable`).
    Unavailable,
    /// The request was forwarded to a user-state pager; the page will be
    /// supplied asynchronously (`pager_data_provided` arrives on the
    /// kernel's request port). Wait on the object.
    Pending,
    /// The request failed.
    Error(VmError),
}

/// The kernel-internal pager interface. External pagers are adapted onto
/// this by [`crate::xpager::ExternalPagerProxy`].
pub trait Pager: Send + Sync + fmt::Debug {
    /// `pager_data_request`: produce the page at `offset`.
    fn data_request(&self, object_id: u64, offset: u64, length: u64) -> PagerReply;

    /// `pager_data_write`: accept a dirty page at pageout time.
    ///
    /// # Errors
    ///
    /// [`VmError::DeviceBusy`] for a transient backing-store failure (the
    /// caller may retry), [`VmError::DeviceError`] for a permanent one,
    /// [`VmError::PagerDied`] when the pager is gone. On any error the
    /// caller must keep the page dirty and resident.
    fn data_write(&self, object_id: u64, offset: u64, data: Vec<u8>) -> VmResult<()>;

    /// `pager_data_unlock`: a fault needs an access the pager revoked
    /// with `pager_data_lock`; ask it to unlock. Built-in pagers never
    /// lock, so the default does nothing.
    fn data_unlock(&self, _object_id: u64, _offset: u64, _length: u64, _access: u8) {}

    /// The object is being destroyed; release its backing store.
    fn terminate(&self, _object_id: u64) {}

    /// Cache identity, for pagers whose objects may persist unreferenced.
    fn ident(&self) -> Option<PagerIdent> {
        None
    }

    /// Port id of the pager instance serving `object_id`, for trace
    /// attribution (`TraceEvent::PagerRequest/PagerReply`). In-process
    /// pagers with no port identity return 0; the fleet client returns
    /// the bound service's port.
    fn port_id(&self, _object_id: u64) -> u64 {
        0
    }
}

/// The kernel's default pager: backing store for anonymous (zero-fill and
/// shadow) memory.
///
/// Two backings are provided. By default pages live in host memory with
/// the period disk latency charged per page (a stand-in for a paging
/// area). With [`DefaultPager::on_fs`], pages live in a real paging
/// *file* of a `mach-fs` filesystem — the arrangement the paper credits
/// to the inode pager: "eliminates the traditional Berkeley UNIX need for
/// separate paging partitions" (§3.3).
pub struct DefaultPager {
    machine: Arc<Machine>,
    store: Mutex<HashMap<(u64, u64), Vec<u8>>>,
    /// Optional paging file: `(fs, file, slot allocator)`.
    paging_file: Option<PagingFile>,
}

struct PagingFile {
    fs: Arc<SimFs>,
    file: FileId,
    slots: Mutex<PagingSlots>,
    page_size: u64,
}

#[derive(Debug, Default)]
struct PagingSlots {
    /// `(object, offset)` → slot index in the paging file.
    map: HashMap<(u64, u64), u64>,
    free: Vec<u64>,
    next: u64,
}

impl fmt::Debug for DefaultPager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DefaultPager")
            .field("pages", &self.store.lock().len())
            .finish()
    }
}

impl DefaultPager {
    /// A default pager charging I/O latency to `machine`.
    pub fn new(machine: &Arc<Machine>) -> Arc<DefaultPager> {
        Arc::new(DefaultPager {
            machine: Arc::clone(machine),
            store: Mutex::new(HashMap::new()),
            paging_file: None,
        })
    }

    /// A default pager writing to a real paging **file** named
    /// `"paging_file"` on `fs` (created if absent) — anonymous memory
    /// pages through the filesystem, not a dedicated partition.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the paging file.
    pub fn on_fs(
        machine: &Arc<Machine>,
        fs: &Arc<SimFs>,
        page_size: u64,
    ) -> Result<Arc<DefaultPager>, mach_fs::FsError> {
        let file = match fs.lookup("paging_file") {
            Ok(f) => f,
            Err(_) => fs.create("paging_file")?,
        };
        Ok(Arc::new(DefaultPager {
            machine: Arc::clone(machine),
            store: Mutex::new(HashMap::new()),
            paging_file: Some(PagingFile {
                fs: Arc::clone(fs),
                file,
                slots: Mutex::new(PagingSlots::default()),
                page_size,
            }),
        }))
    }

    /// Number of pages currently held on "disk".
    pub fn pages_stored(&self) -> usize {
        match &self.paging_file {
            Some(pf) => pf.slots.lock().map.len(),
            None => self.store.lock().len(),
        }
    }

    fn charge_io(&self, bytes: u64) {
        let disk = self.machine.disk();
        let blocks = bytes.div_ceil(disk.block_size).max(1);
        self.machine.charge_wait_us(disk.io_us(blocks));
    }
}

impl Pager for DefaultPager {
    fn data_request(&self, object_id: u64, offset: u64, length: u64) -> PagerReply {
        match &self.paging_file {
            Some(pf) => {
                let slot = {
                    let slots = pf.slots.lock();
                    slots.map.get(&(object_id, offset)).copied()
                };
                match slot {
                    Some(slot) => {
                        let mut buf = vec![0u8; length as usize];
                        match pf.fs.read_at(pf.file, slot * pf.page_size, &mut buf) {
                            Ok(_) => PagerReply::Data(buf),
                            Err(e) => PagerReply::Error(map_fs_error(e)),
                        }
                    }
                    None => PagerReply::Unavailable,
                }
            }
            None => match self.store.lock().get(&(object_id, offset)) {
                Some(d) => {
                    self.charge_io(d.len() as u64);
                    PagerReply::Data(d.clone())
                }
                None => PagerReply::Unavailable,
            },
        }
    }

    fn data_write(&self, object_id: u64, offset: u64, data: Vec<u8>) -> VmResult<()> {
        match &self.paging_file {
            Some(pf) => {
                let slot = {
                    let mut slots = pf.slots.lock();
                    match slots.map.get(&(object_id, offset)) {
                        Some(&s) => s,
                        None => {
                            let s = slots.free.pop().unwrap_or_else(|| {
                                let s = slots.next;
                                slots.next += 1;
                                s
                            });
                            slots.map.insert((object_id, offset), s);
                            s
                        }
                    }
                };
                pf.fs
                    .write_at(pf.file, slot * pf.page_size, &data)
                    .map_err(map_fs_error)
            }
            None => {
                self.charge_io(data.len() as u64);
                self.store.lock().insert((object_id, offset), data);
                Ok(())
            }
        }
    }

    fn terminate(&self, object_id: u64) {
        match &self.paging_file {
            Some(pf) => {
                let mut slots = pf.slots.lock();
                let dead: Vec<_> = slots
                    .map
                    .keys()
                    .filter(|(oid, _)| *oid == object_id)
                    .copied()
                    .collect();
                for key in dead {
                    if let Some(s) = slots.map.remove(&key) {
                        slots.free.push(s);
                    }
                }
            }
            None => {
                self.store.lock().retain(|(oid, _), _| *oid != object_id);
            }
        }
    }
}

/// The inode pager: maps a `mach-fs` file as a memory object, reading and
/// writing file blocks directly (no buffer cache — pages *are* the cache).
pub struct InodePager {
    fs: Arc<SimFs>,
    file: FileId,
}

impl fmt::Debug for InodePager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InodePager")
            .field("file", &self.file)
            .finish()
    }
}

impl InodePager {
    /// A pager for `file` of `fs`.
    pub fn new(fs: &Arc<SimFs>, file: FileId) -> Arc<InodePager> {
        Arc::new(InodePager {
            fs: Arc::clone(fs),
            file,
        })
    }

    /// The file this pager manages.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The cache identity a `(fs, file)` pair produces.
    pub fn ident_for(fs: &Arc<SimFs>, file: FileId) -> PagerIdent {
        PagerIdent::Inode {
            fs: Arc::as_ptr(fs) as usize,
            file: file.0,
        }
    }
}

impl Pager for InodePager {
    fn data_request(&self, _object_id: u64, offset: u64, length: u64) -> PagerReply {
        let mut buf = vec![0u8; length as usize];
        match self.fs.read_at(self.file, offset, &mut buf) {
            Ok(_) => PagerReply::Data(buf),
            Err(e) => PagerReply::Error(map_fs_error(e)),
        }
    }

    fn data_write(&self, _object_id: u64, offset: u64, data: Vec<u8>) -> VmResult<()> {
        let size = self.fs.size(self.file).unwrap_or(0);
        // Do not extend the file past its logical size with page padding.
        let len = if offset >= size {
            return Ok(());
        } else {
            data.len().min((size - offset) as usize)
        };
        self.fs
            .write_at(self.file, offset, &data[..len])
            .map_err(map_fs_error)
    }

    fn ident(&self) -> Option<PagerIdent> {
        Some(InodePager::ident_for(&self.fs, self.file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mach_fs::BlockDevice;
    use mach_hw::machine::MachineModel;

    fn machine() -> Arc<Machine> {
        Machine::boot(MachineModel::vax_8200())
    }

    #[test]
    fn default_pager_roundtrip() {
        let m = machine();
        let p = DefaultPager::new(&m);
        assert!(matches!(
            p.data_request(1, 0, 4096),
            PagerReply::Unavailable
        ));
        p.data_write(1, 4096, vec![7u8; 4096]).unwrap();
        assert_eq!(p.pages_stored(), 1);
        match p.data_request(1, 4096, 4096) {
            PagerReply::Data(d) => assert_eq!(d, vec![7u8; 4096]),
            other => panic!("expected data, got {other:?}"),
        }
        // Object isolation.
        assert!(matches!(
            p.data_request(2, 4096, 4096),
            PagerReply::Unavailable
        ));
        p.terminate(1);
        assert_eq!(p.pages_stored(), 0);
    }

    #[test]
    fn default_pager_charges_disk_latency() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let p = DefaultPager::new(&m);
        let before = m.clock().wait_us();
        p.data_write(1, 0, vec![0u8; 4096]).unwrap();
        assert!(m.clock().wait_us() > before);
    }

    #[test]
    fn inode_pager_reads_file_pages() {
        let m = machine();
        let dev = BlockDevice::new(&m, 64);
        let fs = SimFs::format(&dev);
        let f = fs.create("x").unwrap();
        fs.write_at(f, 0, &vec![9u8; 10_000]).unwrap();
        let p = InodePager::new(&fs, f);
        match p.data_request(1, 8192, 4096) {
            PagerReply::Data(d) => {
                assert_eq!(d.len(), 4096);
                assert!(d[..10_000 - 8192].iter().all(|&b| b == 9));
                assert!(d[10_000 - 8192..].iter().all(|&b| b == 0), "EOF pads zero");
            }
            other => panic!("expected data, got {other:?}"),
        }
        assert!(p.ident().is_some());
        assert_eq!(p.ident(), Some(InodePager::ident_for(&fs, f)));
    }

    #[test]
    fn inode_pager_write_respects_size() {
        let m = machine();
        let dev = BlockDevice::new(&m, 64);
        let fs = SimFs::format(&dev);
        let f = fs.create("x").unwrap();
        fs.write_at(f, 0, b"short").unwrap();
        let p = InodePager::new(&fs, f);
        p.data_write(1, 0, vec![b'A'; 4096]).unwrap();
        assert_eq!(fs.size(f).unwrap(), 5, "pageout must not grow the file");
        let mut buf = [0u8; 5];
        fs.read_at(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"AAAAA");
    }
}

#[cfg(test)]
mod paging_file_tests {
    use super::*;
    use mach_fs::BlockDevice;
    use mach_hw::machine::{Machine, MachineModel};

    #[test]
    fn fs_backed_default_pager_round_trips() {
        let machine = Machine::boot(MachineModel::vax_8200());
        let dev = BlockDevice::new(&machine, 256);
        let fs = SimFs::format(&dev);
        let _b = machine.bind_cpu(0);
        let p = DefaultPager::on_fs(&machine, &fs, 4096).unwrap();
        assert!(matches!(
            p.data_request(1, 0, 4096),
            PagerReply::Unavailable
        ));
        p.data_write(1, 8192, vec![0x42u8; 4096]).unwrap();
        assert_eq!(p.pages_stored(), 1);
        // The bytes are physically in the paging file on the filesystem.
        let f = fs.lookup("paging_file").unwrap();
        assert!(fs.size(f).unwrap() >= 4096);
        match p.data_request(1, 8192, 4096) {
            PagerReply::Data(d) => assert_eq!(d, vec![0x42u8; 4096]),
            other => panic!("expected data, got {other:?}"),
        }
        // Rewrite reuses the same slot; termination frees slots.
        p.data_write(1, 8192, vec![0x43u8; 4096]).unwrap();
        assert_eq!(p.pages_stored(), 1);
        p.terminate(1);
        assert_eq!(p.pages_stored(), 0);
        // A new object reuses the freed slot (no file growth).
        let size_before = fs.size(f).unwrap();
        p.data_write(2, 0, vec![1u8; 4096]).unwrap();
        assert_eq!(fs.size(f).unwrap(), size_before);
    }

    #[test]
    fn kernel_pages_anonymous_memory_through_the_filesystem() {
        let mut model = MachineModel::vax_8200();
        model.mem_bytes = 2 << 20;
        let machine = Machine::boot(model);
        let dev = BlockDevice::new(&machine, 2048);
        let fs = SimFs::format(&dev);
        let kernel = crate::kernel::Kernel::boot_with_paging_file(&machine, &fs);
        let ps = kernel.page_size();
        let task = kernel.create_task();
        let total = 3u64 << 20; // exceeds physical memory
        let addr = task
            .map()
            .allocate(kernel.ctx(), None, total, true)
            .unwrap();
        task.user(0, |u| {
            let mut a = addr;
            while a < addr + total {
                u.write_u32(a, (a / ps) as u32).unwrap();
                a += ps;
            }
        });
        // Pageout happened, and its destination was the paging *file*.
        assert!(kernel.statistics().pageouts > 0);
        let f = fs.lookup("paging_file").unwrap();
        assert!(
            fs.size(f).unwrap() > 0,
            "anonymous pages went through the filesystem, not a partition"
        );
        // Everything reads back.
        task.user(0, |u| {
            for i in (0..total / ps).step_by(17) {
                assert_eq!(
                    u.read_u32(addr + i * ps).unwrap(),
                    ((addr + i * ps) / ps) as u32
                );
            }
        });
    }
}
