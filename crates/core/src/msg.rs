//! Virtual memory riding in messages (paper §2).
//!
//! "The key to efficiency in Mach is the notion that virtual memory
//! management can be integrated with a message-oriented communication
//! facility. This integration allows large amounts of data including
//! whole files and even whole address spaces to be sent in a single
//! message with the efficiency of simple memory remapping."
//!
//! A [`RegionTicket`] detaches a copy-on-write snapshot of a sender's
//! address range (pure map manipulation); it can ride any `mach-ipc`
//! message as a [`mach_ipc::MsgField::Handle`] and be *landed* into any
//! task's address space on the far side. No page is copied unless someone
//! later writes.

use std::sync::Arc;

use mach_ipc::{Message, MsgField};
use parking_lot::Mutex;

use crate::ctx::CoreRefs;
use crate::kernel::Kernel;
use crate::map::{MapEntry, MapTarget};
use crate::object;
use crate::task::Task;
use crate::types::{VmError, VmResult};

/// A detached copy-on-write region in flight between address spaces.
///
/// Holds references on the backing memory objects; dropping an unlanded
/// ticket releases them (the message was never received).
pub struct RegionTicket {
    size: u64,
    /// Entries relative to offset 0, targets referenced.
    entries: Mutex<Option<Vec<MapEntry>>>,
    ctx: std::sync::Weak<CoreRefs>,
}

impl std::fmt::Debug for RegionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionTicket")
            .field("size", &self.size)
            .field("landed", &self.entries.lock().is_none())
            .finish()
    }
}

impl RegionTicket {
    /// The region's size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// True once the ticket has been landed into a task.
    pub fn is_landed(&self) -> bool {
        self.entries.lock().is_none()
    }
}

impl Drop for RegionTicket {
    fn drop(&mut self) {
        // An unlanded ticket still owns its target references.
        let Some(ctx) = self.ctx.upgrade() else {
            return;
        };
        if let Some(entries) = self.entries.lock().take() {
            for e in entries {
                match e.target {
                    MapTarget::Object { object, .. } => object::deallocate(&object, &ctx),
                    MapTarget::Share { map, .. } => drop(map),
                }
            }
        }
    }
}

impl Kernel {
    /// Detach `[addr, addr+size)` of `task` as a copy-on-write ticket
    /// (the "send" half). The sender keeps its data; both sides fault
    /// privately on write.
    ///
    /// # Errors
    ///
    /// [`VmError::BadAlignment`] or [`VmError::InvalidAddress`].
    pub fn detach_region(
        &self,
        task: &Arc<Task>,
        addr: u64,
        size: u64,
    ) -> VmResult<Arc<RegionTicket>> {
        let ctx = self.ctx();
        if !addr.is_multiple_of(ctx.page_size) || !size.is_multiple_of(ctx.page_size) {
            return Err(VmError::BadAlignment);
        }
        let mut entries = task.map().copy_entries(ctx, addr, addr + size)?;
        task.pmap().protect(
            mach_hw::VAddr(addr),
            mach_hw::VAddr(addr + size),
            crate::types::Protection::READ.to_hw(),
        );
        for e in &mut entries {
            e.start -= addr;
            e.end -= addr;
            e.wired = false;
        }
        Ok(Arc::new(RegionTicket {
            size,
            entries: Mutex::new(Some(entries)),
            ctx: Arc::downgrade(ctx),
        }))
    }

    /// Land a ticket into `task`'s address space (the "receive" half);
    /// returns the address. Consumes the ticket's entries: landing twice
    /// fails.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if already landed, [`VmError::NoSpace`]
    /// if the task has no room.
    pub fn land_region(&self, task: &Arc<Task>, ticket: &RegionTicket) -> VmResult<u64> {
        let ctx = self.ctx();
        let entries = ticket
            .entries
            .lock()
            .take()
            .ok_or(VmError::InvalidAddress)?;
        let _ = ctx;
        let base = match task.map().find_free(ticket.size) {
            Ok(b) => b,
            Err(e) => {
                // Put the entries back so the ticket stays valid.
                *ticket.entries.lock() = Some(entries);
                return Err(e);
            }
        };
        for mut e in entries {
            e.start += base;
            e.end += base;
            task.map().insert_entry(e);
        }
        Ok(base)
    }

    /// Convenience: append a region rider to `msg`.
    ///
    /// # Errors
    ///
    /// As for [`Kernel::detach_region`].
    pub fn attach_region(
        &self,
        task: &Arc<Task>,
        addr: u64,
        size: u64,
        msg: Message,
    ) -> VmResult<Message> {
        let ticket = self.detach_region(task, addr, size)?;
        Ok(msg.with(MsgField::U64(size)).with(MsgField::Handle(ticket)))
    }

    /// Convenience: land the region rider at field `i` of `msg` into
    /// `task`; returns `(address, size)`.
    ///
    /// # Errors
    ///
    /// [`VmError::InvalidAddress`] if the field is not a region ticket or
    /// was already landed.
    pub fn receive_region(
        &self,
        task: &Arc<Task>,
        msg: &Message,
        i: usize,
    ) -> VmResult<(u64, u64)> {
        let ticket = msg
            .handle(i)
            .clone()
            .downcast::<RegionTicket>()
            .map_err(|_| VmError::InvalidAddress)?;
        let addr = self.land_region(task, &ticket)?;
        Ok((addr, ticket.size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mach_hw::machine::{Machine, MachineModel};
    use mach_ipc::Port;

    fn boot() -> Arc<Kernel> {
        Kernel::boot(&Machine::boot(MachineModel::vax_8200()))
    }

    #[test]
    fn whole_region_rides_a_message() {
        let k = boot();
        let ps = k.page_size();
        let sender = k.create_task();
        let receiver = k.create_task();
        let size = 256 * ps; // "an entire address space" in miniature
        let src = sender.map().allocate(k.ctx(), None, size, true).unwrap();
        sender.user(0, |u| {
            for p in 0..size / ps {
                u.write_u32(src + p * ps, p as u32).unwrap();
            }
        });

        let (tx, rx) = Port::allocate("bulk", 4);
        let cow0 = k.statistics().cow_faults;
        let msg = k
            .attach_region(&sender, src, size, Message::new(42))
            .unwrap();
        tx.send(msg).unwrap();

        // Receiver picks it up and maps it — still zero copies.
        let got = rx.receive();
        assert_eq!(got.op(), 42);
        assert_eq!(got.u64(0), size);
        let (addr, sz) = k.receive_region(&receiver, &got, 1).unwrap();
        assert_eq!(sz, size);
        assert_eq!(k.statistics().cow_faults, cow0, "transfer copied nothing");

        receiver.user(0, |u| {
            for p in (0..size / ps).step_by(13) {
                assert_eq!(u.read_u32(addr + p * ps).unwrap(), p as u32);
            }
            u.write_u32(addr, 0xFFFF).unwrap();
        });
        sender.user(0, |u| {
            assert_eq!(u.read_u32(src).unwrap(), 0, "sender isolated");
            u.write_u32(src + ps, 0xEEEE).unwrap();
        });
        receiver.user(0, |u| {
            assert_eq!(u.read_u32(addr + ps).unwrap(), 1, "receiver isolated");
        });
        assert!(
            k.statistics().cow_faults > cow0,
            "writes now copy privately"
        );
    }

    #[test]
    fn unlanded_ticket_releases_references() {
        let k = boot();
        let ps = k.page_size();
        let sender = k.create_task();
        let src = sender.map().allocate(k.ctx(), None, 4 * ps, true).unwrap();
        sender.user(0, |u| u.dirty_range(src, 4 * ps).unwrap());
        let obj = sender.map().resolve(k.ctx(), src).unwrap().object;
        let refs_before = obj.lock().ref_count;
        {
            let _ticket = k.detach_region(&sender, src, 4 * ps).unwrap();
            assert_eq!(obj.lock().ref_count, refs_before + 1);
        }
        assert_eq!(
            obj.lock().ref_count,
            refs_before,
            "dropping an unlanded ticket released its reference"
        );
    }

    #[test]
    fn landing_twice_fails() {
        let k = boot();
        let ps = k.page_size();
        let sender = k.create_task();
        let a = k.create_task();
        let b = k.create_task();
        let src = sender.map().allocate(k.ctx(), None, ps, true).unwrap();
        let ticket = k.detach_region(&sender, src, ps).unwrap();
        k.land_region(&a, &ticket).unwrap();
        assert!(ticket.is_landed());
        assert_eq!(
            k.land_region(&b, &ticket).unwrap_err(),
            VmError::InvalidAddress
        );
    }

    #[test]
    fn region_through_port_to_another_thread() {
        // The full story: a service thread receives memory from a client
        // thread and reads it through its own address space.
        let k = boot();
        let ps = k.page_size();
        let (tx, rx) = Port::allocate("svc", 4);
        let k2 = Arc::clone(&k);
        let server = std::thread::spawn(move || {
            let me = k2.create_task();
            let msg = rx.receive();
            let (addr, size) = k2.receive_region(&me, &msg, 1).unwrap();
            me.user(0, |u| {
                let mut sum = 0u64;
                for p in 0..size / 4096 {
                    sum += u.read_u32(addr + p * 4096).unwrap() as u64;
                }
                sum
            })
        });
        let client = k.create_task();
        let src = client.map().allocate(k.ctx(), None, 8 * ps, true).unwrap();
        client.user(0, |u| {
            for p in 0..8u64 {
                u.write_u32(src + p * ps, 10).unwrap();
            }
        });
        let msg = k
            .attach_region(&client, src, 8 * ps, Message::new(1))
            .unwrap();
        tx.send(msg).unwrap();
        assert_eq!(server.join().unwrap(), 80);
    }
}
