//! Deterministic fault injection — the chaos layer.
//!
//! The paper's robustness story is that the machine-independent layer
//! holds all authoritative state: pmap entries can vanish "at almost any
//! time" and external pagers are untrusted user tasks that may stall or
//! die (§3, Tables 3-1/3-2). This module makes those failures happen *on
//! demand and reproducibly*: an [`InjectPlan`] carries a seed plus
//! per-kind rates, and an [`Injector`] (one per booted kernel, in
//! [`crate::CoreRefs`]) answers "should this fault fire here?" from a
//! splitmix64 PRNG — never from wall-clock time or host randomness.
//!
//! Injection sites consult [`Injector::fire`], which makes the decision,
//! appends an [`InjectedEvent`] to the replayable event log, and notifies
//! the observer hook (the kernel wires it to emit
//! [`crate::trace::TraceEvent::Injected`] so every injected fault is
//! visible in the PR 2 trace ring). The sites are:
//!
//! | kind | where | effect |
//! |---|---|---|
//! | [`InjectKind::PagerStall`] | `xpager` proxy `data_request` | request never sent; fault waits out `pager_timeout` |
//! | [`InjectKind::PagerDeath`] | `xpager` proxy `data_request` | pager declared dead; object quarantined |
//! | [`InjectKind::MsgDrop`] | both `xpager` directions | Table 3-1/3-2 message silently lost |
//! | [`InjectKind::MsgDuplicate`] | pager → kernel messages | message processed twice (dedup must hold) |
//! | [`InjectKind::MsgDelay`] | both `xpager` directions | message delayed by [`InjectPlan::delay`] |
//! | [`InjectKind::IoTransient`] | `mach-fs` block device | transfer fails, retry may succeed |
//! | [`InjectKind::IoPermanent`] | `mach-fs` block device | transfer fails for good |
//! | [`InjectKind::MemPressure`] | pageout daemon loop | free pages held hostage, forcing reclaim |
//!
//! **Determinism.** One PRNG stream **per CPU** (slot keyed by
//! [`mach_hw::machine::bound_cpu`]; stream 0 is seeded with the plan seed
//! verbatim, stream *i* with a splitmix-derived sub-seed), one draw per
//! `fire` call with a non-zero rate (zero-rate kinds draw nothing, so
//! enabling an unrelated kind does not perturb the sequence). A
//! single-threaded workload runs entirely on stream 0 and with the same
//! seed produces a byte-identical event log — `tests/chaos_replay.rs`
//! enforces this. With threads racing on several CPUs, each CPU's
//! *decision sequence* is still a pure function of (seed, cpu, its own
//! call order): timing changes which decision meets which fault, but
//! never re-rolls the dice. Cross-CPU guarantees are the *invariants*
//! (no leaked pages, no hung faults), not one global sequence; the `seq`
//! field records the global interleaving actually observed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use crate::ctx::CoreRefs;
use crate::page::PageId;

/// The kinds of fault the chaos layer can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectKind {
    /// The external pager never answers a `data_request`.
    PagerStall,
    /// The external pager dies mid-protocol.
    PagerDeath,
    /// A pager-protocol message is dropped.
    MsgDrop,
    /// A pager → kernel message is delivered twice.
    MsgDuplicate,
    /// A pager-protocol message is delayed by [`InjectPlan::delay`].
    MsgDelay,
    /// The block device fails a transfer transiently.
    IoTransient,
    /// The block device fails a transfer permanently.
    IoPermanent,
    /// The free pool shrinks under the pageout daemon.
    MemPressure,
}

impl std::fmt::Display for InjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InjectKind::PagerStall => "pager-stall",
            InjectKind::PagerDeath => "pager-death",
            InjectKind::MsgDrop => "msg-drop",
            InjectKind::MsgDuplicate => "msg-duplicate",
            InjectKind::MsgDelay => "msg-delay",
            InjectKind::IoTransient => "io-transient",
            InjectKind::IoPermanent => "io-permanent",
            InjectKind::MemPressure => "mem-pressure",
        })
    }
}

/// What to inject and how often: a seed plus one rate per [`InjectKind`],
/// in permille (0 = never, 1000 = every opportunity).
///
/// # Examples
///
/// ```
/// use mach_vm::inject::InjectPlan;
/// let plan = InjectPlan::new(42).io_transient(250).msg_drop(100);
/// assert_eq!(plan.seed, 42);
/// assert_eq!(plan.rate(mach_vm::inject::InjectKind::IoTransient), 250);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectPlan {
    /// PRNG seed. Same seed + same (single-threaded) workload ⇒ same
    /// injected-event sequence.
    pub seed: u64,
    /// [`InjectKind::PagerStall`] rate, permille.
    pub pager_stall: u32,
    /// [`InjectKind::PagerDeath`] rate, permille.
    pub pager_death: u32,
    /// [`InjectKind::MsgDrop`] rate, permille.
    pub msg_drop: u32,
    /// [`InjectKind::MsgDuplicate`] rate, permille.
    pub msg_duplicate: u32,
    /// [`InjectKind::MsgDelay`] rate, permille.
    pub msg_delay: u32,
    /// [`InjectKind::IoTransient`] rate, permille.
    pub io_transient: u32,
    /// [`InjectKind::IoPermanent`] rate, permille.
    pub io_permanent: u32,
    /// [`InjectKind::MemPressure`] rate, permille (evaluated once per
    /// daemon pass).
    pub mem_pressure: u32,
    /// How long a delayed message waits.
    pub delay: Duration,
    /// Free pages held hostage per pressure pulse.
    pub pressure_pages: u64,
}

impl InjectPlan {
    /// A plan that injects nothing (all rates zero) under `seed`.
    pub fn new(seed: u64) -> InjectPlan {
        InjectPlan {
            seed,
            pager_stall: 0,
            pager_death: 0,
            msg_drop: 0,
            msg_duplicate: 0,
            msg_delay: 0,
            io_transient: 0,
            io_permanent: 0,
            mem_pressure: 0,
            delay: Duration::from_millis(5),
            pressure_pages: 4,
        }
    }

    /// The rate for `kind`, permille.
    pub fn rate(&self, kind: InjectKind) -> u32 {
        match kind {
            InjectKind::PagerStall => self.pager_stall,
            InjectKind::PagerDeath => self.pager_death,
            InjectKind::MsgDrop => self.msg_drop,
            InjectKind::MsgDuplicate => self.msg_duplicate,
            InjectKind::MsgDelay => self.msg_delay,
            InjectKind::IoTransient => self.io_transient,
            InjectKind::IoPermanent => self.io_permanent,
            InjectKind::MemPressure => self.mem_pressure,
        }
    }

    /// Set the [`InjectKind::PagerStall`] rate (permille).
    #[must_use]
    pub fn pager_stall(mut self, permille: u32) -> Self {
        self.pager_stall = permille;
        self
    }

    /// Set the [`InjectKind::PagerDeath`] rate (permille).
    #[must_use]
    pub fn pager_death(mut self, permille: u32) -> Self {
        self.pager_death = permille;
        self
    }

    /// Set the [`InjectKind::MsgDrop`] rate (permille).
    #[must_use]
    pub fn msg_drop(mut self, permille: u32) -> Self {
        self.msg_drop = permille;
        self
    }

    /// Set the [`InjectKind::MsgDuplicate`] rate (permille).
    #[must_use]
    pub fn msg_duplicate(mut self, permille: u32) -> Self {
        self.msg_duplicate = permille;
        self
    }

    /// Set the [`InjectKind::MsgDelay`] rate (permille).
    #[must_use]
    pub fn msg_delay(mut self, permille: u32) -> Self {
        self.msg_delay = permille;
        self
    }

    /// Set the [`InjectKind::IoTransient`] rate (permille).
    #[must_use]
    pub fn io_transient(mut self, permille: u32) -> Self {
        self.io_transient = permille;
        self
    }

    /// Set the [`InjectKind::IoPermanent`] rate (permille).
    #[must_use]
    pub fn io_permanent(mut self, permille: u32) -> Self {
        self.io_permanent = permille;
        self
    }

    /// Set the [`InjectKind::MemPressure`] rate (permille) and pages held
    /// per pulse.
    #[must_use]
    pub fn mem_pressure(mut self, permille: u32, pages: u64) -> Self {
        self.mem_pressure = permille;
        self.pressure_pages = pages;
        self
    }

    /// Set the [`InjectKind::MsgDelay`] duration.
    #[must_use]
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }
}

/// One injected fault, in decision order — the replayable record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedEvent {
    /// Position in the global injection sequence.
    pub seq: u64,
    /// What was injected.
    pub kind: InjectKind,
    /// Memory-object id at the site (0 when not applicable — device and
    /// pressure sites).
    pub object: u64,
    /// Byte offset (device sites: block number; pressure: pages held).
    pub offset: u64,
    /// The CPU whose decision stream fired this event.
    pub cpu: u32,
}

/// Sebastiano Vigna's splitmix64 — tiny, full-period, and plenty for
/// deciding whether a fault fires. Not cryptographic, which is the point:
/// the sequence must be boringly reproducible.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Observer invoked on every injected fault (kind, object, offset). The
/// kernel installs one that emits [`crate::trace::TraceEvent::Injected`].
pub type InjectObserver = Arc<dyn Fn(InjectKind, u64, u64) + Send + Sync>;

/// The per-kernel injection engine. Disabled (the default) it is inert:
/// [`Injector::fire`] is a single branch and draws nothing.
/// Number of per-CPU PRNG decision streams (covers any simulated CPU
/// count; threads bound to CPU `c` draw from stream `c % INJECT_STREAMS`).
pub const INJECT_STREAMS: usize = 16;

pub struct Injector {
    enabled: bool,
    plan: InjectPlan,
    /// One decision stream per CPU slot. Stream 0 carries the plan seed
    /// verbatim so single-threaded runs replay byte-identically against
    /// logs recorded before streams existed.
    rngs: Vec<Mutex<SplitMix64>>,
    log: Mutex<Vec<InjectedEvent>>,
    seq: AtomicU64,
    observer: Mutex<Option<InjectObserver>>,
    /// Pages currently held hostage by memory pressure, and the offset
    /// counter that keeps their (object, offset) identities unique.
    held: Mutex<Vec<PageId>>,
    pressure_off: AtomicU64,
}

impl std::fmt::Debug for Injector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Injector")
            .field("enabled", &self.enabled)
            .field("plan", &self.plan)
            .field("fired", &self.seq.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The pseudo-object id pressure pages are parked under; no real object
/// ever gets this id, so nothing faults on them.
const PRESSURE_OBJECT: u64 = u64::MAX;

/// One [`SplitMix64`] per CPU slot: stream 0 gets `seed` verbatim,
/// stream *i* a splitmix-derived sub-seed, so streams are mutually
/// well-separated yet each a pure function of (seed, i).
fn streams_for(seed: u64) -> Vec<Mutex<SplitMix64>> {
    (0..INJECT_STREAMS)
        .map(|i| {
            let s = if i == 0 {
                seed
            } else {
                SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next()
            };
            Mutex::new(SplitMix64::new(s))
        })
        .collect()
}

impl Injector {
    /// An engine executing `plan`.
    pub fn new(plan: InjectPlan) -> Arc<Injector> {
        let seed = plan.seed;
        Arc::new(Injector {
            enabled: true,
            plan,
            rngs: streams_for(seed),
            log: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            observer: Mutex::new(None),
            held: Mutex::new(Vec::new()),
            pressure_off: AtomicU64::new(0),
        })
    }

    /// The inert engine every kernel without an
    /// [`crate::BootOptions::inject`] plan gets.
    pub fn disabled() -> Arc<Injector> {
        Arc::new(Injector {
            enabled: false,
            plan: InjectPlan::new(0),
            rngs: streams_for(0),
            log: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            observer: Mutex::new(None),
            held: Mutex::new(Vec::new()),
            pressure_off: AtomicU64::new(0),
        })
    }

    /// Whether any injection can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The plan being executed.
    pub fn plan(&self) -> &InjectPlan {
        &self.plan
    }

    /// Install the fired-fault observer (the kernel's trace bridge).
    pub fn set_observer(&self, obs: Option<InjectObserver>) {
        *self.observer.lock() = obs;
    }

    /// Decide whether `kind` fires at this site. A firing decision is
    /// logged (see [`Injector::events`]) and reported to the observer.
    /// Zero-rate kinds consume no PRNG draw, so enabling one kind never
    /// perturbs another kind's sequence. The draw comes from the calling
    /// CPU's own decision stream, so racing CPUs never perturb each
    /// other's sequences either.
    pub fn fire(&self, kind: InjectKind, object: u64, offset: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let rate = self.plan.rate(kind);
        if rate == 0 {
            return false;
        }
        let cpu = mach_hw::machine::bound_cpu();
        let draw = {
            let mut rng = self.rngs[cpu % INJECT_STREAMS].lock();
            rng.next() % 1000
        };
        if draw >= u64::from(rate) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.log.lock().push(InjectedEvent {
            seq,
            kind,
            object,
            offset,
            cpu: cpu as u32,
        });
        if let Some(obs) = self.observer.lock().clone() {
            obs(kind, object, offset);
        }
        true
    }

    /// The injected-event log so far, in decision order.
    pub fn events(&self) -> Vec<InjectedEvent> {
        self.log.lock().clone()
    }

    /// How long a delayed message waits.
    pub fn delay(&self) -> Duration {
        self.plan.delay
    }

    /// One memory-pressure opportunity, called by the pageout daemon each
    /// pass: releases the previous pulse's hostages, then (PRNG willing)
    /// grabs [`InjectPlan::pressure_pages`] free pages and wires them so
    /// nothing — fault handler or daemon — can have them back until the
    /// next pulse. Returns pages grabbed.
    pub fn pressure_pulse(&self, ctx: &CoreRefs) -> u64 {
        if !self.enabled || self.plan.mem_pressure == 0 {
            return 0;
        }
        self.release_pressure(ctx);
        if !self.fire(InjectKind::MemPressure, 0, self.plan.pressure_pages) {
            return 0;
        }
        let mut held = self.held.lock();
        let mut grabbed = 0;
        for _ in 0..self.plan.pressure_pages {
            let off = self.pressure_off.fetch_add(1, Ordering::Relaxed) * ctx.page_size;
            let Some(page) = ctx.resident.alloc(PRESSURE_OBJECT, off, Weak::new()) else {
                break;
            };
            // alloc hands the page back busy; it is ours, not in transit.
            ctx.resident.with_page(page, |p| p.busy = false);
            ctx.resident.wire(page);
            held.push(page);
            grabbed += 1;
        }
        grabbed
    }

    /// Give every pressure-held page back to the free pool.
    pub fn release_pressure(&self, ctx: &CoreRefs) {
        let pages = std::mem::take(&mut *self.held.lock());
        for page in pages {
            ctx.resident.unwire(page);
            ctx.resident.free_page(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_moves() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(8);
        assert_ne!(c.next(), xs[0]);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let i = Injector::disabled();
        assert!(!i.is_enabled());
        for _ in 0..100 {
            assert!(!i.fire(InjectKind::MsgDrop, 1, 0));
        }
        assert!(i.events().is_empty());
    }

    #[test]
    fn full_rate_always_fires_and_zero_rate_draws_nothing() {
        let a = Injector::new(InjectPlan::new(1).msg_drop(1000));
        let b = Injector::new(InjectPlan::new(1).msg_drop(1000));
        for k in 0..50 {
            assert!(a.fire(InjectKind::MsgDrop, 1, k));
            // Zero-rate kind: no draw, no event — so b's extra calls do
            // not perturb its MsgDrop sequence relative to a's.
            assert!(!b.fire(InjectKind::IoTransient, 1, k));
            assert!(b.fire(InjectKind::MsgDrop, 1, k));
        }
        assert_eq!(a.events().len(), 50);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn same_seed_same_sequence_different_seed_diverges() {
        let mk = |seed| Injector::new(InjectPlan::new(seed).io_transient(300));
        let (a, b, c) = (mk(11), mk(11), mk(12));
        let fire_all = |i: &Injector| -> Vec<bool> {
            (0..200)
                .map(|k| i.fire(InjectKind::IoTransient, 0, k))
                .collect()
        };
        let (fa, fb, fc) = (fire_all(&a), fire_all(&b), fire_all(&c));
        assert_eq!(fa, fb);
        assert_eq!(a.events(), b.events());
        assert_ne!(fa, fc, "different seed gives a different schedule");
        let hits = fa.iter().filter(|&&x| x).count();
        assert!(hits > 20 && hits < 120, "≈30% rate, got {hits}/200");
    }

    #[test]
    fn per_cpu_streams_are_independent() {
        use mach_hw::machine::{Machine, MachineModel};
        // A run where CPU 1 races 100 draws of its own must leave CPU 0's
        // decision sequence exactly what it is in a solo run: streams are
        // a pure function of (seed, cpu, own call order).
        let solo = Injector::new(InjectPlan::new(9).io_transient(500));
        let solo_fires: Vec<bool> = (0..100)
            .map(|k| solo.fire(InjectKind::IoTransient, 0, k))
            .collect();

        let mixed = Injector::new(InjectPlan::new(9).io_transient(500));
        let machine = Machine::boot(MachineModel::multimax(2));
        std::thread::scope(|s| {
            s.spawn(|| {
                let _bind = machine.bind_cpu(1);
                for k in 0..100 {
                    mixed.fire(InjectKind::IoTransient, 1, k);
                }
            });
        });
        let mixed_fires: Vec<bool> = (0..100)
            .map(|k| mixed.fire(InjectKind::IoTransient, 0, k))
            .collect();
        assert_eq!(solo_fires, mixed_fires);
        let cpus: std::collections::HashSet<u32> = mixed.events().iter().map(|e| e.cpu).collect();
        assert!(cpus.contains(&0) && cpus.contains(&1), "both streams fired");
    }

    #[test]
    fn observer_sees_every_fired_event() {
        let i = Injector::new(InjectPlan::new(3).msg_duplicate(1000));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        i.set_observer(Some(Arc::new(move |kind, object, offset| {
            sink.lock().push((kind, object, offset));
        })));
        assert!(i.fire(InjectKind::MsgDuplicate, 9, 4096));
        assert_eq!(
            seen.lock().as_slice(),
            &[(InjectKind::MsgDuplicate, 9, 4096)]
        );
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(InjectKind::PagerDeath.to_string(), "pager-death");
        assert_eq!(InjectKind::IoTransient.to_string(), "io-transient");
    }
}
