//! Tasks and `fork` (paper §2, §2.1).
//!
//! A task "includes a paged virtual address space"; the UNIX process is a
//! task with one thread. `fork` builds the child's address map from the
//! parent's **inheritance values**: `Shared` regions are converted to
//! sharing-map entries visible to both, `Copy` regions become symmetric
//! copy-on-write mappings (no data moves), and `None` regions are simply
//! absent from the child.
//!
//! [`Task::user`] runs a closure as "user code" on a simulated CPU: loads
//! and stores go through the hardware MMU, and faults re-enter the kernel
//! through [`crate::fault::vm_fault`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mach_hw::{Access, Fault, VAddr};
use mach_pmap::Pmap;

use crate::ctx::CoreRefs;
use crate::fault::vm_fault;
use crate::map::{MapEntry, MapTarget, VmMap};
use crate::ops::VmOp;
use crate::types::{Inheritance, Protection, VmError, VmResult};

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

/// Shadow-chain length at which `fork` runs a collapse pass over a
/// copied entry's chain before returning. Matches the fault path's
/// depth trigger so a fork storm cannot outrun collection between
/// faults.
const FORK_COMPACT_DEPTH: usize = 4;

/// A Mach task: an address space (map + pmap) and a resource context.
#[derive(Debug)]
pub struct Task {
    id: u64,
    map: Arc<VmMap>,
    ctx: Arc<CoreRefs>,
}

impl Task {
    pub(crate) fn new(ctx: &Arc<CoreRefs>) -> Arc<Task> {
        let pmap = ctx.machdep.create();
        let hi = ctx.machine.kind().user_va_limit();
        // Leave page zero unmapped, like every sane UNIX.
        let map = VmMap::new_task_map(ctx, pmap, ctx.page_size, hi);
        let id = NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed);
        map.set_owner(id);
        Arc::new(Task {
            id,
            map,
            ctx: Arc::clone(ctx),
        })
    }

    /// The task's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The task's address map.
    pub fn map(&self) -> &Arc<VmMap> {
        &self.map
    }

    /// The task's pmap.
    pub fn pmap(&self) -> &Arc<dyn Pmap> {
        self.map.pmap().expect("task maps always drive a pmap")
    }

    /// Fork: build a child address space according to the per-entry
    /// inheritance values (paper §2.1). No page is copied.
    pub fn fork(self: &Arc<Task>) -> Arc<Task> {
        let child = Task::new(&self.ctx);
        self.ctx.record_op(VmOp::Fork {
            parent: self.id,
            child: child.id(),
        });
        // The entry clones and sharing-map conversions below are what
        // `fork` *is*, not separate replay-visible ops.
        let _s = self.ctx.ops.suppress();
        let entries = self.map.snapshot_entries();
        for e in entries {
            match e.inheritance {
                Inheritance::None => {
                    // "The child's corresponding address is left
                    // unallocated."
                }
                Inheritance::Shared => {
                    let (share, soff, s, _end) = self
                        .map
                        .share_entry(&self.ctx, e.start)
                        .expect("entry came from the snapshot");
                    let _ = s;
                    child.map.insert_entry(MapEntry {
                        start: e.start,
                        end: e.end,
                        target: MapTarget::Share {
                            map: share,
                            offset: soff,
                        },
                        prot: e.prot,
                        max_prot: e.max_prot,
                        inheritance: Inheritance::Shared,
                        copy_on_write: false,
                        needs_copy: false,
                        wired: false,
                    });
                }
                Inheritance::Copy => {
                    let clones = self
                        .map
                        .copy_entries(&self.ctx, e.start, e.end)
                        .expect("entry came from the snapshot");
                    for mut c in clones {
                        c.inheritance = Inheritance::Copy;
                        c.wired = false;
                        child.map.insert_entry(c);
                    }
                    // Writes by the parent must now fault so the shadow
                    // machinery can intervene: narrow its hardware map.
                    self.pmap().protect(
                        VAddr(e.start),
                        VAddr(e.end),
                        e.prot.remove(Protection::WRITE).to_hw(),
                    );
                    // Fork storms (docs/WORKLOADS.md `server_fleet`) grow
                    // a shadow level per generation; compact chains that
                    // crossed the fault path's depth trigger now, while
                    // earlier generations' diamonds are freshly dead.
                    if let Ok(r) = self.map.resolve(&self.ctx, e.start) {
                        if r.object.chain_length() >= FORK_COMPACT_DEPTH {
                            crate::object::collapse(&r.object, &self.ctx);
                        }
                    }
                }
            }
        }
        child
    }

    /// Fork, then pre-warm the child's pmap with the parent's live
    /// translations via the optional `pmap_copy` of Table 3-4 (entered
    /// read-only so copy-on-write still traps). Saves the child its
    /// initial read faults at the cost of eager pmap work.
    pub fn fork_prewarmed(self: &Arc<Task>) -> Arc<Task> {
        let child = self.fork();
        for e in self.map.snapshot_entries() {
            if e.inheritance == Inheritance::Copy {
                child.pmap().copy_from(
                    self.pmap().as_ref(),
                    VAddr(e.start),
                    e.end - e.start,
                    VAddr(e.start),
                );
            }
        }
        child
    }

    /// Make this task current on `cpu` (loads its pmap).
    pub fn activate(&self, cpu: usize) {
        self.pmap().activate(cpu);
    }

    /// Run `body` as user code of this task on `cpu`.
    ///
    /// The closure receives a [`UserCtx`] whose accessors go through the
    /// simulated MMU and fault into the kernel transparently.
    pub fn user<R>(self: &Arc<Task>, cpu: usize, body: impl FnOnce(&UserCtx) -> R) -> R {
        let _bind = self.ctx.machine.bind_cpu(cpu);
        self.activate(cpu);
        let uc = UserCtx {
            task: Arc::clone(self),
            cpu,
        };
        let r = body(&uc);
        self.pmap().deactivate(cpu);
        r
    }

    /// Spawn a thread of this task on `cpu` — "the basic unit of CPU
    /// utilization ... All threads within a task share access to all task
    /// resources" (paper §2). The thread runs `body` as user code against
    /// the shared address space.
    pub fn spawn_thread<R: Send + 'static>(
        self: &Arc<Task>,
        cpu: usize,
        body: impl FnOnce(&UserCtx) -> R + Send + 'static,
    ) -> std::thread::JoinHandle<R> {
        let task = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("task-{}-thread", self.id))
            .spawn(move || task.user(cpu, body))
            .expect("spawn task thread")
    }

    /// Resolve a hardware fault against this task's address space.
    ///
    /// Implements the NS32082 erratum workaround *machine-independently*:
    /// a **protection** fault on a read, at an address the pmap already
    /// maps readable, can only be the write half of a read-modify-write
    /// cycle lying about itself, so it is retried as a write. Plain
    /// translation-miss read faults are exempt — at a mapped address they
    /// are legitimate on ports that discard MMU state behind a running
    /// task (SUN 3 pmeg steals) and must be resolved as reads.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] from the fault handler.
    pub fn handle_fault(self: &Arc<Task>, fault: Fault) -> VmResult<()> {
        let ctx = &self.ctx;
        ctx.machine.charge(ctx.machine.cost().kernel_entry);
        let mut access = match fault.access {
            Access::Write => Protection::WRITE,
            Access::Read | Access::Execute => Protection::READ,
        };
        if access == Protection::READ && fault.code == mach_hw::FaultCode::Protection {
            let va = VAddr(ctx.trunc_page(fault.va.0));
            if self.pmap().extract(va).is_some() {
                // A *protection* fault on a read, at a page the pmap maps
                // readable, is self-contradictory — the hardware access
                // report must be lying, which is exactly the NS32082 RMW
                // erratum (paper §5.1). The FaultCode gate matters: a
                // translation-miss read fault at a mapped address is
                // legitimate on ports that discard MMU state behind a
                // running task's back (SUN 3 pmeg steals) and must stay a
                // read.
                access = Protection::WRITE;
            }
        }
        vm_fault(ctx, &self.map, fault.va.0, access, false)?;
        Ok(())
    }
}

impl Drop for Task {
    fn drop(&mut self) {
        // Custom `Drop` runs before the fields drop, so the record lands
        // ahead of the address-space teardown it stands for.
        self.ctx.record_op(VmOp::TaskDrop { task: self.id });
    }
}

/// User-mode accessors for a task (see [`Task::user`]).
///
/// Every method retries after resolving faults through the kernel, as the
/// hardware would re-execute the faulting instruction.
#[derive(Debug)]
pub struct UserCtx {
    task: Arc<Task>,
    cpu: usize,
}

// The pmap contract says any mapping may be discarded at any time, so a
// user access must tolerate re-faulting indefinitely as long as the
// system makes progress — on a SUN 3 with more than 8 active tasks,
// context steals can invalidate a fresh mapping before the retried
// access lands many times in a row (§5.1's "additional page faults").
// The cap is only a safety net against a genuine no-progress loop, so it
// must sit far above any reachable thrash depth.
const MAX_RETRIES: usize = 4096;

impl UserCtx {
    /// The task this context belongs to.
    pub fn task(&self) -> &Arc<Task> {
        &self.task
    }

    fn retry<R>(&self, mut op: impl FnMut() -> Result<R, Fault>) -> VmResult<R> {
        let mut last: Option<(u64, Access)> = None;
        for _ in 0..MAX_RETRIES {
            match op() {
                Ok(r) => return Ok(r),
                Err(fault) => {
                    let key = (fault.va.0, fault.access);
                    self.task.handle_fault(fault)?;
                    // The same access faulting twice in a row means the
                    // resolved mapping is invisible to this CPU: on ports
                    // with per-pmap MMU state (the SUN 3 context register),
                    // another CPU may have stolen the state the register
                    // names, and the handler rebuilt the mapping under a
                    // fresh assignment the register has never seen. Real
                    // hardware reloads the MMU registers on every return to
                    // user mode; reload them here before re-executing.
                    if last == Some(key) {
                        self.task.activate(self.cpu);
                    }
                    last = Some(key);
                }
            }
        }
        Err(VmError::ResourceShortage)
    }

    /// Load a `u32`.
    ///
    /// # Errors
    ///
    /// [`VmError`] when the fault cannot be resolved (unallocated address,
    /// protection violation).
    pub fn read_u32(&self, va: u64) -> VmResult<u32> {
        self.task.ctx.record_op(VmOp::Touch {
            task: self.task.id,
            addr: va,
            len: 4,
        });
        let m = &self.task.ctx.machine;
        self.retry(|| m.load_u32(VAddr(va)))
    }

    /// Store a `u32`.
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn write_u32(&self, va: u64, v: u32) -> VmResult<()> {
        self.task.ctx.record_op(VmOp::Write {
            task: self.task.id,
            addr: va,
            len: 4,
            value: v,
        });
        let m = &self.task.ctx.machine;
        self.retry(|| m.store_u32(VAddr(va), v))
    }

    /// Read a byte range.
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn read_bytes(&self, va: u64, len: usize) -> VmResult<Vec<u8>> {
        self.task.ctx.record_op(VmOp::Touch {
            task: self.task.id,
            addr: va,
            len: len as u64,
        });
        let m = &self.task.ctx.machine;
        let mut buf = vec![0u8; len];
        self.retry(|| m.load(VAddr(va), &mut buf))?;
        Ok(buf)
    }

    /// Write a byte range.
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn write_bytes(&self, va: u64, data: &[u8]) -> VmResult<()> {
        // Recorded in collapsed form: fault pattern exact, payload folded
        // to the leading word (see [`VmOp::Write`] on the lossiness).
        let mut lead = [0u8; 4];
        for (d, s) in lead.iter_mut().zip(data.iter()) {
            *d = *s;
        }
        self.task.ctx.record_op(VmOp::Write {
            task: self.task.id,
            addr: va,
            len: data.len() as u64,
            value: u32::from_le_bytes(lead),
        });
        let m = &self.task.ctx.machine;
        self.retry(|| m.store(VAddr(va), data))
    }

    /// A read-modify-write cycle on a `u32` — the operation the NS32082
    /// erratum mis-reports; the kernel works around it transparently.
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn rmw_u32(&self, va: u64, f: impl Fn(u32) -> u32) -> VmResult<u32> {
        self.task.ctx.record_op(VmOp::Rmw {
            task: self.task.id,
            addr: va,
        });
        let m = &self.task.ctx.machine;
        self.retry(|| m.rmw_u32(VAddr(va), &f))
    }

    /// Touch every page of `[va, va+len)` for read (working-set warmup).
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn touch_range(&self, va: u64, len: u64) -> VmResult<()> {
        self.task.ctx.record_op(VmOp::Touch {
            task: self.task.id,
            addr: va,
            len,
        });
        let _s = self.task.ctx.ops.suppress();
        let page = self.task.ctx.page_size;
        let mut a = va;
        while a < va + len {
            self.read_u32(a)?;
            a += page;
        }
        Ok(())
    }

    /// Dirty every page of `[va, va+len)`.
    ///
    /// # Errors
    ///
    /// As for [`UserCtx::read_u32`].
    pub fn dirty_range(&self, va: u64, len: u64) -> VmResult<()> {
        self.task.ctx.record_op(VmOp::Write {
            task: self.task.id,
            addr: va,
            len,
            value: 0x5A5A_5A5A,
        });
        let _s = self.task.ctx.ops.suppress();
        let page = self.task.ctx.page_size;
        let mut a = va;
        while a < va + len {
            self.write_u32(a, 0x5A5A_5A5A)?;
            a += page;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use mach_hw::machine::{Machine, MachineModel};

    fn boot() -> Arc<crate::kernel::Kernel> {
        Kernel::boot(&Machine::boot(MachineModel::micro_vax_ii()))
    }

    #[test]
    fn fork_copy_semantics_are_symmetric_snapshots() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = parent.map().allocate(ctx, None, 4 * ps, true).unwrap();
        parent.user(0, |u| {
            u.write_u32(addr, 100).unwrap();
            u.write_u32(addr + ps, 200).unwrap();
        });
        let child = parent.fork();
        // The child sees the snapshot...
        child.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 100);
            assert_eq!(u.read_u32(addr + ps).unwrap(), 200);
            // ...and its writes are private.
            u.write_u32(addr, 111).unwrap();
        });
        parent.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 100, "parent unaffected");
            // Parent writes are invisible to the child too.
            u.write_u32(addr + ps, 222).unwrap();
        });
        child.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 111);
            assert_eq!(u.read_u32(addr + ps).unwrap(), 200, "child unaffected");
        });
        assert!(k.statistics().cow_faults >= 2);
    }

    #[test]
    fn fork_copies_no_data_upfront() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let size = 64 * ps; // "fork 256K" in miniature
        let addr = parent.map().allocate(ctx, None, size, true).unwrap();
        parent.user(0, |u| u.dirty_range(addr, size).unwrap());
        let cow_before = k.statistics().cow_faults;
        let zf_before = k.statistics().zero_fill_count;
        let _child = parent.fork();
        assert_eq!(k.statistics().cow_faults, cow_before, "no pushes at fork");
        assert_eq!(
            k.statistics().zero_fill_count,
            zf_before,
            "no fills at fork"
        );
    }

    #[test]
    fn fork_shared_inheritance_is_coherent_both_ways() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = parent.map().allocate(ctx, None, 2 * ps, true).unwrap();
        parent
            .map()
            .inherit(ctx, addr, 2 * ps, Inheritance::Shared)
            .unwrap();
        let child = parent.fork();
        parent.user(0, |u| u.write_u32(addr, 1234).unwrap());
        child.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 1234, "child sees parent write");
            u.write_u32(addr + 4, 5678).unwrap();
        });
        parent.user(0, |u| {
            assert_eq!(
                u.read_u32(addr + 4).unwrap(),
                5678,
                "parent sees child write"
            );
        });
        // Grandchild shares too (sharing map reused, not re-wrapped).
        let grandchild = child.fork();
        grandchild.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 1234);
            u.write_u32(addr, 1).unwrap();
        });
        parent.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 1));
    }

    #[test]
    fn fork_none_inheritance_leaves_child_unallocated() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = parent.map().allocate(ctx, None, ps, true).unwrap();
        parent
            .map()
            .inherit(ctx, addr, ps, Inheritance::None)
            .unwrap();
        let child = parent.fork();
        assert_eq!(child.map().entry_count(), 0);
        child.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap_err(), VmError::InvalidAddress);
        });
        // Parent keeps using it.
        parent.user(0, |u| u.write_u32(addr, 5).unwrap());
    }

    #[test]
    fn mixed_inheritance_fork() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let a = parent.map().allocate(ctx, None, ps, true).unwrap(); // copy
        let b = parent.map().allocate(ctx, None, ps, true).unwrap();
        let c = parent.map().allocate(ctx, None, ps, true).unwrap();
        parent
            .map()
            .inherit(ctx, b, ps, Inheritance::Shared)
            .unwrap();
        parent.map().inherit(ctx, c, ps, Inheritance::None).unwrap();
        parent.user(0, |u| {
            u.write_u32(a, 1).unwrap();
            u.write_u32(b, 2).unwrap();
            u.write_u32(c, 3).unwrap();
        });
        let child = parent.fork();
        assert_eq!(child.map().entry_count(), 2);
        child.user(0, |u| {
            assert_eq!(u.read_u32(a).unwrap(), 1);
            assert_eq!(u.read_u32(b).unwrap(), 2);
            assert!(u.read_u32(c).is_err());
            u.write_u32(a, 10).unwrap();
            u.write_u32(b, 20).unwrap();
        });
        parent.user(0, |u| {
            assert_eq!(u.read_u32(a).unwrap(), 1, "copy region isolated");
            assert_eq!(u.read_u32(b).unwrap(), 20, "shared region coherent");
        });
    }

    #[test]
    fn repeated_fork_builds_then_collapses_chains() {
        // "A trivial example of this kind of shadow chaining can be caused
        // by a simple UNIX process which repeatedly forks its address
        // space" (§3.5).
        let k = boot();
        let ctx = k.ctx();
        let ps = k.page_size();
        let mut task = k.create_task();
        let addr = task.map().allocate(ctx, None, 4 * ps, true).unwrap();
        task.user(0, |u| u.dirty_range(addr, 4 * ps).unwrap());
        for gen in 0..8 {
            let child = task.fork();
            // The child dirties one page, forcing shadows on its side.
            child.user(0, |u| u.write_u32(addr, gen).unwrap());
            task = child;
        }
        let r = task.map().resolve(ctx, addr).unwrap();
        let chain = r.object.chain_length();
        let collapsed = k.statistics().collapses + k.statistics().bypasses;
        assert!(
            chain <= 8,
            "chain of length {chain} should stay bounded (collapses: {collapsed})"
        );
        assert!(collapsed > 0, "garbage collection must have fired");
        // Data is still correct at the end of the chain.
        task.user(0, |u| {
            assert_eq!(u.read_u32(addr).unwrap(), 7);
            assert_eq!(u.read_u32(addr + ps).unwrap(), 0x5A5A_5A5A);
        });
    }

    #[test]
    fn fork_of_forked_shared_region() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = parent.map().allocate(ctx, None, ps, true).unwrap();
        parent
            .map()
            .inherit(ctx, addr, ps, Inheritance::Shared)
            .unwrap();
        let c1 = parent.fork();
        let c2 = parent.fork();
        c1.user(0, |u| u.write_u32(addr, 42).unwrap());
        c2.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 42));
        parent.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 42));
    }

    #[test]
    fn user_ctx_rmw_works_through_cow() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = parent.map().allocate(ctx, None, ps, true).unwrap();
        parent.user(0, |u| u.write_u32(addr, 10).unwrap());
        let child = parent.fork();
        child.user(0, |u| {
            let old = u.rmw_u32(addr, |v| v + 5).unwrap();
            assert_eq!(old, 10);
            assert_eq!(u.read_u32(addr).unwrap(), 15);
        });
        parent.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 10));
    }

    #[test]
    fn prewarmed_fork_avoids_child_read_faults() {
        let k = boot();
        let parent = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let size = 16 * ps;
        let addr = parent.map().allocate(ctx, None, size, true).unwrap();
        parent.user(0, |u| u.dirty_range(addr, size).unwrap());

        let lazy = parent.fork();
        let f0 = k.statistics().faults;
        lazy.user(0, |u| u.touch_range(addr, size).unwrap());
        let lazy_faults = k.statistics().faults - f0;
        assert!(lazy_faults >= 16, "lazy child refaults everything");

        let warm = parent.fork_prewarmed();
        let f1 = k.statistics().faults;
        warm.user(0, |u| u.touch_range(addr, size).unwrap());
        let warm_faults = k.statistics().faults - f1;
        assert_eq!(warm_faults, 0, "pmap_copy pre-entered every page");

        // Copy-on-write still traps: a write is private.
        warm.user(0, |u| u.write_u32(addr, 77).unwrap());
        parent.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 0x5A5A_5A5A));
    }

    #[test]
    fn threads_share_the_address_space() {
        let machine = Machine::boot(MachineModel::multimax(2));
        let k = Kernel::boot(&machine);
        let task = k.create_task();
        let ps = k.page_size();
        let addr = task.map().allocate(k.ctx(), None, 2 * ps, true).unwrap();
        // Two threads of one task on two CPUs: same memory, no sharing
        // maps needed — threads *are* the sharing.
        let t1 = task.spawn_thread(0, move |u| {
            u.write_u32(addr, 0xAAAA).unwrap();
            // Spin until the peer's write is visible.
            for _ in 0..100_000 {
                if u.read_u32(addr + 4).unwrap() == 0xBBBB {
                    return true;
                }
            }
            false
        });
        let t2 = task.spawn_thread(1, move |u| {
            u.write_u32(addr + 4, 0xBBBB).unwrap();
            for _ in 0..100_000 {
                if u.read_u32(addr).unwrap() == 0xAAAA {
                    return true;
                }
            }
            false
        });
        assert!(t1.join().unwrap(), "thread 1 saw thread 2's write");
        assert!(t2.join().unwrap(), "thread 2 saw thread 1's write");
    }

    #[test]
    fn task_ids_are_unique() {
        let k = boot();
        let a = k.create_task();
        let b = k.create_task();
        assert_ne!(a.id(), b.id());
    }
}
