//! Replay-visible operation recording — the *record* half of the
//! trace-driven scenario engine (the replay half lives in `mach-bench`;
//! see `docs/TRACING.md`, "Replay").
//!
//! [`crate::trace`] captures what the VM system *did* (fault resolutions,
//! pager traffic); this module captures what was *asked of it* — the
//! sequence of Table 2-1 calls and user accesses that drove those events.
//! A recorded [`OpRecord`] stream is sufficient to re-execute the same
//! workload against a freshly booted kernel on any architecture port,
//! which is what turns "pmap is a cache" (paper §4) into an executable
//! cross-port oracle: replaying one op stream on all five ports must
//! produce identical machine-independent observables.
//!
//! Recording follows the [`crate::trace::TraceSink`] contract: disabled
//! (the default), every site costs one relaxed atomic load; enabled, ops
//! append to a single mutex-guarded log stamped with the recording CPU.
//! The append order is the linearization the replayer reproduces.
//!
//! Two design points keep the stream replayable:
//!
//! - **Composite accessors record once.** [`crate::task::UserCtx`] range
//!   helpers (`touch_range`, `dirty_range`) record one range op and
//!   suppress the per-page accesses they are built from, via a
//!   thread-local [`OpRecorder::suppress`] guard.
//! - **Non-replayable internals are suppressed.** `vm_copy` performs an
//!   internal `deallocate` on the destination; recording that fragment
//!   without the copy itself would corrupt the stream, so the kernel
//!   wraps such composites in a suppress guard. The op vocabulary is the
//!   replay-visible surface, not every internal map mutation.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

use mach_hw::machine::Machine;
use parking_lot::Mutex;

use crate::types::{Inheritance, Protection};

/// One replay-visible VM operation.
///
/// Task ids are the recording kernel's ids; a replayer treats them as
/// opaque names and maps them onto its own freshly created tasks (the
/// `Fork` op carries the recorded child id for exactly this reason —
/// lineage-advancing fork storms rebuild any task graph from the stream
/// alone). `MapFile.file` is the recording filesystem's raw
/// [`mach_fs::FileId`] value, resolved against a file table declared in
/// the exported scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// `task_create`.
    TaskCreate {
        /// New task.
        task: u64,
    },
    /// The task's last reference was dropped (address space torn down).
    TaskDrop {
        /// Dropped task.
        task: u64,
    },
    /// `fork` with the parent's per-entry inheritance mix.
    Fork {
        /// Forking task.
        parent: u64,
        /// Id the recording kernel gave the child.
        child: u64,
    },
    /// `vm_allocate` (the recorded address is replayed exactly).
    Allocate {
        /// Owning task.
        task: u64,
        /// Returned (start) address.
        addr: u64,
        /// Size in bytes (page rounded).
        size: u64,
    },
    /// A file mapped through the inode pager ([`crate::Kernel::map_file`]).
    MapFile {
        /// Owning task.
        task: u64,
        /// Recording-side raw file id (see [`VmOp`] docs).
        file: u64,
        /// Returned (start) address.
        addr: u64,
        /// Size in bytes (page rounded).
        size: u64,
        /// Mapping protection.
        prot: Protection,
    },
    /// `vm_deallocate`.
    Deallocate {
        /// Owning task.
        task: u64,
        /// Start address.
        addr: u64,
        /// Size in bytes (page rounded).
        size: u64,
    },
    /// `vm_protect`.
    Protect {
        /// Owning task.
        task: u64,
        /// Start address.
        addr: u64,
        /// Size in bytes (page rounded).
        size: u64,
        /// Whether the maximum protection was set.
        set_maximum: bool,
        /// The new protection.
        prot: Protection,
    },
    /// `vm_inherit`.
    Inherit {
        /// Owning task.
        task: u64,
        /// Start address.
        addr: u64,
        /// Size in bytes (page rounded).
        size: u64,
        /// The new inheritance.
        inheritance: Inheritance,
    },
    /// Read accesses at page stride over `[addr, addr+len)` (a single
    /// load when `len` ≤ 4).
    Touch {
        /// Accessing task.
        task: u64,
        /// First address.
        addr: u64,
        /// Range length in bytes.
        len: u64,
    },
    /// Write accesses of `value` at page stride over `[addr, addr+len)`
    /// (a single store when `len` ≤ 4). Bulk byte-writes are recorded in
    /// this form too: the fault pattern is preserved exactly, the byte
    /// payload is collapsed to `value` (documented lossiness — replayed
    /// contents are compared replay-vs-replay, never replay-vs-live).
    Write {
        /// Accessing task.
        task: u64,
        /// First address.
        addr: u64,
        /// Range length in bytes.
        len: u64,
        /// Value stored at each page.
        value: u32,
    },
    /// A read-modify-write cycle (replayed with the identity function —
    /// same fault pattern, NS32082 erratum path included).
    Rmw {
        /// Accessing task.
        task: u64,
        /// Address.
        addr: u64,
    },
    /// An explicit reclaim pass ([`crate::Kernel::reclaim`]).
    Reclaim {
        /// Pages requested.
        n: u64,
    },
    /// A free-pool balance ([`crate::Kernel::balance`]). The amount
    /// reclaimed depends on the booted machine's memory size, so traces
    /// meant as cross-port oracles use explicit [`VmOp::Reclaim`] passes
    /// instead.
    Balance,
}

/// One recorded operation with the CPU whose stream it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// CPU the call was made from (replay multiplexes stream `cpu` onto
    /// replay CPU `cpu % n_cpus`).
    pub cpu: u32,
    /// The operation.
    pub op: VmOp,
}

thread_local! {
    static SUPPRESS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Guard returned by [`OpRecorder::suppress`]: while alive, recording on
/// this thread is a no-op (composite ops record once at the outermost
/// level).
#[derive(Debug)]
pub struct SuppressOps {
    _priv: (),
}

impl Drop for SuppressOps {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// The kernel-wide op recorder (one per booted kernel, shared through
/// [`crate::CoreRefs`]).
#[derive(Debug, Default)]
pub struct OpRecorder {
    enabled: AtomicBool,
    log: Mutex<Vec<OpRecord>>,
}

impl OpRecorder {
    /// A disabled recorder with an empty log.
    pub fn new() -> OpRecorder {
        OpRecorder::default()
    }

    /// Start recording (clears any previous capture).
    pub fn enable(&self) {
        self.log.lock().clear();
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (the log is kept until the next [`OpRecorder::enable`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Snapshot the recorded stream.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.log.lock().clone()
    }

    /// Record `op`, stamped with the current CPU. One relaxed load when
    /// recording is off or this thread is inside a suppress guard.
    pub fn record(&self, machine: &Machine, op: VmOp) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        if SUPPRESS_DEPTH.with(|d| d.get()) > 0 {
            return;
        }
        let cpu = machine.current_cpu() as u32;
        self.log.lock().push(OpRecord { cpu, op });
    }

    /// Suppress recording on this thread until the guard drops. Used by
    /// composite operations that already recorded themselves (range
    /// accessors) or are not replay-visible (`vm_copy` internals).
    pub fn suppress(&self) -> SuppressOps {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
        SuppressOps { _priv: () }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mach_hw::machine::{Machine, MachineModel};

    fn machine() -> std::sync::Arc<Machine> {
        Machine::boot(MachineModel::micro_vax_ii())
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let m = machine();
        let r = OpRecorder::new();
        r.record(&m, VmOp::Balance);
        assert!(r.snapshot().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enable_records_and_clears_previous_capture() {
        let m = machine();
        let r = OpRecorder::new();
        r.enable();
        r.record(&m, VmOp::Reclaim { n: 4 });
        r.disable();
        assert_eq!(r.snapshot().len(), 1);
        // Still readable after disable, cleared by the next enable.
        r.enable();
        assert!(r.snapshot().is_empty());
        r.record(&m, VmOp::Balance);
        r.record(&m, VmOp::Reclaim { n: 1 });
        assert_eq!(
            r.snapshot().iter().map(|o| o.op).collect::<Vec<_>>(),
            vec![VmOp::Balance, VmOp::Reclaim { n: 1 }]
        );
    }

    #[test]
    fn suppress_guard_nests() {
        let m = machine();
        let r = OpRecorder::new();
        r.enable();
        {
            let _outer = r.suppress();
            r.record(&m, VmOp::Balance);
            {
                let _inner = r.suppress();
                r.record(&m, VmOp::Balance);
            }
            r.record(&m, VmOp::Balance);
        }
        r.record(&m, VmOp::Reclaim { n: 2 });
        let log = r.snapshot();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, VmOp::Reclaim { n: 2 });
    }

    #[test]
    fn records_stamp_the_current_cpu() {
        let m = Machine::boot(MachineModel::multimax(2));
        let r = OpRecorder::new();
        r.enable();
        {
            let _b = m.bind_cpu(1);
            r.record(&m, VmOp::Balance);
        }
        assert_eq!(r.snapshot()[0].cpu, 1);
    }
}
