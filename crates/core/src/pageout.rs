//! The paging daemon (paper §3.1, §5.2 case 2).
//!
//! Pages move free → active → inactive → (clean reclaim | pageout) using
//! reference bits sampled through the pmap layer. Before a page is written
//! out, its mappings are removed with the **deferred** shootdown strategy:
//! "the system first removes the mapping from any primary memory mapping
//! data structures and then initiates pageout only after all referencing
//! TLBs have been flushed."
//!
//! Reclamation runs synchronously when the free pool runs dry (the fault
//! handler calls [`reclaim`]) and can also be driven from a dedicated
//! thread via [`PageoutDaemon`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::ctx::CoreRefs;
use crate::page::{PageId, PageQueue};
use crate::trace::{PagerMsg, TraceEvent};
use crate::types::VmError;

/// How many times a transient ([`VmError::DeviceBusy`]) pageout write is
/// retried before the pageout is abandoned for this daemon pass.
const PAGEOUT_RETRIES: u32 = 3;

/// How many distinct shadow-chained objects one reclaim sweep hands to
/// the §3.5 collapse pass. Bounded so pressure-path latency stays
/// predictable; the sweep runs often enough that the whole population is
/// visited over a few passes.
const COMPACT_PER_SWEEP: usize = 8;

/// Try to free at least `want` pages; returns how many were freed.
///
/// Order of attack: refill the inactive queue from the active queue
/// (clearing reference bits), evict unreferenced inactive pages (clean
/// pages are reclaimed, dirty ones written to their pager), and finally
/// reap unreferenced objects from the object cache.
pub fn reclaim(ctx: &CoreRefs, want: usize) -> usize {
    let _sp = ctx.prof_span(crate::profile::SpanKind::Pageout);
    if ctx.health.is_enabled() {
        ctx.health.page_queues(&ctx.machine, ctx.resident.counts());
    }
    let page = ctx.page_size;
    let mut freed = 0usize;

    // Work-stealing start point: each reclaiming CPU sweeps the queue
    // shards beginning at "its" shard, so concurrent reclaimers (the
    // daemon plus fault-path callers on other CPUs) fan out over
    // different shards first and collide only when their own runs dry.
    let home = ctx.machine.current_cpu() % ctx.resident.shard_count();

    // Refill the inactive queue so the scan below has candidates.
    let counts = ctx.resident.counts();
    let target_inactive = (want * 2).max(8);
    if (counts.inactive as usize) < target_inactive {
        let need = target_inactive - counts.inactive as usize;
        for p in ctx.resident.active_candidates_from(home, need) {
            ctx.machdep.clear_reference(p.base(page), page);
            ctx.resident.set_queue(p, PageQueue::Inactive);
        }
    }

    // Memory pressure is the other moment chains are worth compacting:
    // while sweeping, note objects that sit on shadow chains and run the
    // §3.5 collapse pass over a bounded set of them once the evictions
    // are done (no page or object lock is held here). A collapsed chain
    // both frees obscured pages outright and shortens every future
    // fault's descent.
    let mut compact: Vec<std::sync::Arc<crate::object::VmObject>> = Vec::new();
    for p in ctx.resident.inactive_candidates_from(home, want * 4) {
        if freed >= want {
            break;
        }
        if compact.len() < COMPACT_PER_SWEEP {
            let owner = ctx
                .resident
                .with_page(p, |pi| pi.identity.as_ref().map(|i| i.object.clone()));
            if let Some(obj) = owner.and_then(|w| w.upgrade()) {
                if obj.chain_length() > 0
                    && !compact.iter().any(|o| std::sync::Arc::ptr_eq(o, &obj))
                {
                    compact.push(obj);
                }
            }
        }
        if evict_one(ctx, p) {
            freed += 1;
        }
    }
    for obj in compact {
        crate::object::collapse(&obj, ctx);
    }

    while freed < want {
        let before = ctx.resident.counts().free;
        let reaped = {
            let _oc = ctx.prof_span(crate::profile::SpanKind::ObjectCache);
            ctx.cache.reap_one(ctx)
        };
        if !reaped {
            break;
        }
        if ctx.health.is_enabled() {
            ctx.health.cache_occupancy(ctx.cache.len() as u64);
        }
        let after = ctx.resident.counts().free;
        freed += (after - before) as usize;
    }
    freed
}

/// Evict one inactive page if legal; returns whether a page was freed.
fn evict_one(ctx: &CoreRefs, page: PageId) -> bool {
    let ps = ctx.page_size;
    let pa = page.base(ps);
    // Claim atomically: the claim marks the page busy, excluding faulting
    // threads and concurrent reclaimers (daemon + synchronous reclaim).
    if !ctx.resident.claim_evict(page) {
        return false;
    }
    let (ident, dirty_hint) = ctx
        .resident
        .with_page(page, |p| (p.identity.clone(), p.dirty));
    let Some(ident) = ident else {
        // Orphan page (identity already cleared): just free it.
        ctx.resident.free_page(page);
        return true;
    };
    let Some(obj) = ident.object.upgrade() else {
        ctx.machdep.remove_all(pa, ps);
        scrub(ctx, page);
        ctx.resident.free_page(page);
        return true;
    };
    let Some(mut s) = obj.try_lock_state() else {
        ctx.resident.release_evict(page);
        return false; // contended; try another page
    };
    if s.resident.get(&ident.offset) != Some(&page) {
        drop(s);
        ctx.resident.release_evict(page);
        return false; // identity changed under us
    }
    // Second chance: a referenced page goes back to the active queue.
    if ctx.machdep.is_referenced(pa, ps) {
        drop(s);
        ctx.machdep.clear_reference(pa, ps);
        ctx.resident.release_evict(page);
        ctx.resident.set_queue(page, PageQueue::Active);
        ctx.stats.reactivations.fetch_add(1, Ordering::Relaxed);
        ctx.trace_emit(0, obj.id(), ident.offset, TraceEvent::Reactivate);
        return false;
    }
    // Remove mappings with the pageout (deferred) strategy...
    let pending = ctx.machdep.remove_all_deferred(pa, ps);
    let dirty = dirty_hint || ctx.machdep.is_modified(pa, ps);
    if dirty {
        if s.pager.is_none() {
            // Anonymous memory meets the default pager on first pageout.
            s.pager = Some(Arc::clone(&ctx.default_pager));
        }
        let pager = Arc::clone(s.pager.as_ref().expect("just set"));
        s.paging_in_progress += 1;
        // The page stays **resident and busy in the object** until the
        // pager write completes: a concurrent fault must wait on it, not
        // zero-fill a fresh copy — otherwise two in-flight pageouts of
        // the same offset can reach the pager out of order and resurrect
        // stale data.
        drop(s);
        // ...and write only after every referencing TLB has been flushed.
        if !pending.is_complete() {
            ctx.machdep.update();
            // A concurrent reclaimer may have drained our queue entries
            // and still be executing them: wait for our own flushes (the
            // timeout mirrors the hardware shootdown's forced-flush
            // fallback).
            pending.wait_complete(std::time::Duration::from_millis(200));
        }
        let mut buf = vec![0u8; ps as usize];
        ctx.machine
            .phys()
            .read(pa, &mut buf)
            .expect("resident frame readable");
        ctx.trace_emit(
            0,
            obj.id(),
            ident.offset,
            TraceEvent::PagerRequest {
                msg: PagerMsg::DataWrite,
                pager: pager.port_id(obj.id()),
                causal: crate::trace::current_causal(),
            },
        );
        let mut result = pager.data_write(obj.id(), ident.offset, buf);
        let mut attempt = 0;
        while matches!(result, Err(VmError::DeviceBusy)) && attempt < PAGEOUT_RETRIES {
            // Transient backing-store error: retry with backoff. The frame
            // is still busy and untouched, so re-read it rather than
            // cloning the buffer on the (common) first-try-succeeds path.
            attempt += 1;
            ctx.stats.io_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(50 << attempt));
            let mut retry = vec![0u8; ps as usize];
            ctx.machine
                .phys()
                .read(pa, &mut retry)
                .expect("resident frame readable");
            result = pager.data_write(obj.id(), ident.offset, retry);
        }
        if result.is_err() {
            // The write never made it to backing store: the page keeps
            // its data and identity, stays dirty (the modify bit was
            // consumed above, so pin the hint) and returns to the
            // inactive queue for a later daemon pass.
            {
                let mut s = obj.lock();
                s.paging_in_progress -= 1;
            }
            ctx.resident.with_page(page, |p| p.dirty = true);
            ctx.resident.release_evict(page);
            ctx.stats.failed_pageouts.fetch_add(1, Ordering::Relaxed);
            obj.busy_wakeup.notify_all();
            return false;
        }
        {
            let mut s = obj.lock();
            s.paging_in_progress -= 1;
            // Only now does the page leave the object; the hash identity
            // must vanish with the residency so a fault can allocate a
            // replacement immediately.
            if s.resident.get(&ident.offset) == Some(&page) {
                s.resident.remove(&ident.offset);
            }
            ctx.resident.clear_identity(page);
        }
        ctx.stats.pageouts.fetch_add(1, Ordering::Relaxed);
        ctx.trace_emit(0, obj.id(), ident.offset, TraceEvent::PageoutWrite);
    } else {
        s.resident.remove(&ident.offset);
        ctx.resident.clear_identity(page);
        drop(s);
        if !pending.is_complete() {
            ctx.machdep.update();
            pending.wait_complete(std::time::Duration::from_millis(200));
        }
        ctx.stats.reclaims.fetch_add(1, Ordering::Relaxed);
        ctx.trace_emit(0, obj.id(), ident.offset, TraceEvent::Reclaim);
    }
    scrub(ctx, page);
    ctx.resident.free_page(page);
    // Anyone who was waiting on the (briefly busy) page rechecks and
    // refaults through the object.
    obj.busy_wakeup.notify_all();
    true
}

/// Clear leftover modify/reference attributes so the frame's next user
/// starts clean.
fn scrub(ctx: &CoreRefs, page: PageId) {
    let pa = page.base(ctx.page_size);
    ctx.machdep.clear_modify(pa, ctx.page_size);
    ctx.machdep.clear_reference(pa, ctx.page_size);
}

/// A background paging daemon keeping the free pool above a threshold.
#[derive(Debug)]
pub struct PageoutDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PageoutDaemon {
    /// Start a daemon that keeps at least `free_target` pages free,
    /// checking every `interval`.
    pub fn start(ctx: Arc<CoreRefs>, free_target: u64, interval: Duration) -> PageoutDaemon {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mach-pageout".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    // Chaos layer: maybe shrink the free pool first, so
                    // the daemon reclaims under artificial pressure.
                    ctx.injector.pressure_pulse(&ctx);
                    let free = ctx.resident.counts().free;
                    if free < free_target {
                        reclaim(&ctx, (free_target - free) as usize);
                    }
                    std::thread::sleep(interval);
                }
                // Give hostage pages back on the way out so end-of-run
                // invariant checks see a clean resident table.
                ctx.injector.release_pressure(&ctx);
            })
            .expect("spawn pageout daemon");
        PageoutDaemon {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the daemon and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PageoutDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::types::Protection;
    use mach_hw::machine::{Machine, MachineModel};

    #[test]
    fn daemon_keeps_free_pool_above_target() {
        let mut model = MachineModel::micro_vax_ii();
        model.mem_bytes = 2 << 20;
        let machine = Machine::boot(model);
        let kernel = Kernel::boot(&machine);
        let ctx = Arc::clone(kernel.ctx());
        let free_target = 64;
        let daemon = PageoutDaemon::start(Arc::clone(&ctx), free_target, Duration::from_millis(5));

        // Burn through more memory than the machine has; the daemon frees
        // pages behind our back.
        let task = kernel.create_task();
        let ps = kernel.page_size();
        let total = 3u64 << 20;
        let addr = task.map().allocate(&ctx, None, total, true).unwrap();
        task.user(0, |u| {
            let mut a = addr;
            while a < addr + total {
                u.write_u32(a, (a / ps) as u32).unwrap();
                a += ps;
            }
        });
        // Give the daemon a beat, then check the pool.
        std::thread::sleep(Duration::from_millis(60));
        let free = ctx.resident.counts().free;
        assert!(
            free >= free_target / 2,
            "daemon kept only {free} pages free (target {free_target})"
        );
        assert!(kernel.statistics().pageouts > 0);
        // Data still correct.
        task.user(0, |u| {
            for i in (0..total / ps).step_by(11) {
                assert_eq!(
                    u.read_u32(addr + i * ps).unwrap(),
                    ((addr + i * ps) / ps) as u32
                );
            }
        });
        daemon.stop();
    }

    #[test]
    fn second_chance_reactivates_referenced_pages() {
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let kernel = Kernel::boot(&machine);
        let ctx = kernel.ctx();
        let ps = kernel.page_size();
        let task = kernel.create_task();
        let addr = task.map().allocate(ctx, None, 4 * ps, true).unwrap();
        task.user(0, |u| u.dirty_range(addr, 4 * ps).unwrap());
        // Everything just became inactive...
        for p in ctx.resident.active_candidates(16) {
            ctx.resident.set_queue(p, crate::page::PageQueue::Inactive);
        }
        // ...but the task references its pages again.
        task.user(0, |u| u.touch_range(addr, 4 * ps).unwrap());
        let before = kernel.statistics();
        reclaim(ctx, 2);
        let after = kernel.statistics();
        assert!(
            after.reactivations > before.reactivations,
            "referenced inactive pages get a second chance"
        );
    }

    #[test]
    fn clean_pages_reclaim_without_io() {
        let machine = Machine::boot(MachineModel::vax_8200());
        let kernel = Kernel::boot(&machine);
        let _ctx = kernel.ctx();
        let ps = kernel.page_size();
        // Map a file read-only and touch it: the pages are clean copies.
        let dev = mach_fs::BlockDevice::new(&machine, 64);
        let fs = mach_fs::SimFs::format(&dev);
        let f = fs.create("clean").unwrap();
        fs.write_at(f, 0, &vec![3u8; (8 * ps) as usize]).unwrap();
        let task = kernel.create_task();
        let addr = kernel
            .map_file(&task, &fs, f, None, Protection::READ)
            .unwrap();
        task.user(0, |u| u.touch_range(addr, 8 * ps).unwrap());
        let before = kernel.statistics();
        let freed = kernel.reclaim(8);
        let after = kernel.statistics();
        assert!(freed >= 4);
        assert!(after.reclaims > before.reclaims, "clean pages reclaimed");
        assert_eq!(
            after.pageouts, before.pageouts,
            "no write-back for clean file pages"
        );
        // Refault re-reads from the file.
        task.user(0, |u| {
            let b = u.read_bytes(addr, 1).unwrap();
            assert_eq!(b[0], 3);
        });
    }

    #[test]
    fn failed_pageout_keeps_page_dirty_for_a_later_pass() {
        // Regression: evict_one used to assume the backing-store write
        // succeeds. Fail every device write, reclaim, and the dirty page
        // must survive — then heal the device and watch the retry land.
        let machine = Machine::boot(MachineModel::vax_8200());
        let dev = mach_fs::BlockDevice::new(&machine, 512);
        let fs = mach_fs::SimFs::format(&dev);
        let kernel = Kernel::boot_with_paging_file(&machine, &fs);
        let ctx = kernel.ctx();
        let ps = kernel.page_size();
        let task = kernel.create_task();
        let addr = task.map().allocate(ctx, None, 4 * ps, true).unwrap();
        task.user(0, |u| u.dirty_range(addr, 4 * ps).unwrap());
        task.user(0, |u| u.write_u32(addr, 0xFEED).unwrap());
        for p in ctx.resident.active_candidates(16) {
            ctx.resident.set_queue(p, crate::page::PageQueue::Inactive);
        }
        reclaim(ctx, 4); // ages reference bits
        dev.set_fault_hook(Some(std::sync::Arc::new(|op, _| {
            (op == mach_fs::IoOp::Write).then_some(mach_fs::IoError::Permanent)
        })));
        let before = kernel.statistics();
        let freed = reclaim(ctx, 4);
        let after = kernel.statistics();
        assert_eq!(freed, 0, "nothing freed while the device eats writes");
        assert!(after.failed_pageouts > before.failed_pageouts);
        assert_eq!(after.pageouts, before.pageouts, "no pageout completed");
        // The pages are still resident and still dirty.
        task.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 0xFEED));
        // Device healed: the next pass writes them out for real.
        dev.set_fault_hook(None);
        for p in ctx.resident.active_candidates(16) {
            ctx.resident.set_queue(p, crate::page::PageQueue::Inactive);
        }
        reclaim(ctx, 4);
        let healed = reclaim(ctx, 4);
        assert!(healed > 0, "pageout succeeds once the device recovers");
        assert!(kernel.statistics().pageouts > after.pageouts);
        task.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 0xFEED));
    }

    #[test]
    fn transient_pageout_errors_are_retried_with_backoff() {
        use std::sync::atomic::AtomicU64;
        let machine = Machine::boot(MachineModel::vax_8200());
        let dev = mach_fs::BlockDevice::new(&machine, 512);
        let fs = mach_fs::SimFs::format(&dev);
        let kernel = Kernel::boot_with_paging_file(&machine, &fs);
        let ctx = kernel.ctx();
        let ps = kernel.page_size();
        let task = kernel.create_task();
        let addr = task.map().allocate(ctx, None, 2 * ps, true).unwrap();
        task.user(0, |u| u.dirty_range(addr, 2 * ps).unwrap());
        for p in ctx.resident.active_candidates(16) {
            ctx.resident.set_queue(p, crate::page::PageQueue::Inactive);
        }
        reclaim(ctx, 2);
        // Fail the first write attempt transiently, then succeed.
        let failures = std::sync::Arc::new(AtomicU64::new(1));
        let f2 = std::sync::Arc::clone(&failures);
        dev.set_fault_hook(Some(std::sync::Arc::new(move |op, _| {
            if op == mach_fs::IoOp::Write
                && f2
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                Some(mach_fs::IoError::Transient)
            } else {
                None
            }
        })));
        let before = kernel.statistics();
        let freed = reclaim(ctx, 2);
        let after = kernel.statistics();
        assert!(freed > 0, "retry made the pageout land");
        assert!(after.io_retries > before.io_retries);
        assert_eq!(after.failed_pageouts, before.failed_pageouts);
        assert!(after.pageouts > before.pageouts);
    }

    #[test]
    fn deferred_shootdown_completes_before_pageout_write() {
        // The §5.2 case-2 ordering: mappings are removed with the
        // deferred strategy and the dirty page is written only after
        // update() has flushed every referencing TLB. The debug_assert in
        // evict_one enforces it; this test drives the path end to end.
        let machine = Machine::boot(MachineModel::multimax(2));
        let kernel = Kernel::boot(&machine);
        let ctx = kernel.ctx();
        let ps = kernel.page_size();
        let task = kernel.create_task();
        let addr = task.map().allocate(ctx, None, 4 * ps, true).unwrap();
        task.user(0, |u| u.dirty_range(addr, 4 * ps).unwrap());
        for p in ctx.resident.active_candidates(16) {
            ctx.resident.set_queue(p, crate::page::PageQueue::Inactive);
        }
        // Two passes: the first ages reference bits (second chance), the
        // second evicts.
        reclaim(ctx, 4);
        let freed = reclaim(ctx, 4);
        assert!(freed > 0);
        assert!(kernel.statistics().pageouts > 0);
    }
}
