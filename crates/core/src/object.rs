//! Memory objects, shadow objects and the object cache (paper §3.3–§3.5).
//!
//! A memory object is "a repository for data, indexed by byte, upon which
//! various operations can be performed"; physical memory is just a cache
//! of its contents. Copy-on-write is implemented with **shadow objects**:
//! an initially-empty internal object that "collects and remembers
//! modified pages", relying on the object it shadows for everything
//! unmodified. Repeated copying builds shadow *chains*, and most of the
//! complexity of Mach memory management — reproduced faithfully here — is
//! the garbage collection that keeps those chains short
//! ([`collapse`]).
//!
//! Frequently-used objects (program text, mapped files) can outlive their
//! last mapping in the **object cache** so that reuse costs nothing
//! (`pager_cache`, paper §3.3) — this is what makes the second 2.5 MB file
//! read of Table 7-1 fast under Mach.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::ctx::CoreRefs;
use crate::page::PageId;
use crate::pager::{Pager, PagerIdent};

static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// Mutable state of a memory object.
#[derive(Debug)]
pub struct ObjState {
    /// Size in bytes (page aligned).
    pub size: u64,
    /// Mapping references (map entries, kernel users). The object cache
    /// holds objects whose count reached zero.
    pub ref_count: usize,
    /// The object's resident pages: offset → page (the paper's
    /// per-object page list).
    pub resident: BTreeMap<u64, PageId>,
    /// The object this one shadows, if any.
    pub shadow: Option<Arc<VmObject>>,
    /// Offset into the shadow at which this object's offset 0 falls.
    pub shadow_offset: u64,
    /// How many objects currently shadow this one.
    pub shadow_count: usize,
    /// Backing-store manager; `None` means transient zero-fill until the
    /// default pager adopts the pages at pageout time.
    pub pager: Option<Arc<dyn Pager>>,
    /// `true` for kernel-created (zero-fill / shadow) objects.
    pub internal: bool,
    /// Keep in the object cache after the last reference dies
    /// (`pager_cache`).
    pub can_persist: bool,
    /// Terminated objects are dead husks awaiting `Drop`.
    pub terminated: bool,
    /// True while a pageout is writing some page of this object.
    pub paging_in_progress: u32,
    /// Set by `pager_readonly` (Table 3-2): a write attempt must allocate
    /// a new (shadow) object rather than dirty this one.
    pub pager_readonly: bool,
    /// Per-page access locks set by `pager_data_lock` (Table 3-2):
    /// offset → protection bits the pager has *revoked*. Faults needing a
    /// revoked access send `pager_data_unlock` and wait.
    pub locks: HashMap<u64, u8>,
    /// The object's pager died (its port vanished, or the chaos layer
    /// killed it). In-flight and future faults fail fast with
    /// [`crate::types::VmError::PagerDied`] instead of waiting out
    /// `pager_timeout` — see [`quarantine`].
    pub pager_dead: bool,
}

/// A Mach memory object.
#[derive(Debug)]
pub struct VmObject {
    id: u64,
    state: Mutex<ObjState>,
    /// Wakes waiters for busy pages of this object.
    pub(crate) busy_wakeup: Condvar,
}

impl VmObject {
    /// A new internal (zero-fill) object of `size` bytes.
    pub fn new_internal(size: u64) -> Arc<VmObject> {
        Arc::new(VmObject {
            id: NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(ObjState {
                size,
                ref_count: 1,
                resident: BTreeMap::new(),
                shadow: None,
                shadow_offset: 0,
                shadow_count: 0,
                pager: None,
                internal: true,
                can_persist: false,
                terminated: false,
                paging_in_progress: 0,
                pager_readonly: false,
                locks: HashMap::new(),
                pager_dead: false,
            }),
            busy_wakeup: Condvar::new(),
        })
    }

    /// A new object managed by `pager`.
    pub fn new_with_pager(size: u64, pager: Arc<dyn Pager>, can_persist: bool) -> Arc<VmObject> {
        let o = VmObject::new_internal(size);
        {
            let mut s = o.state.lock();
            s.pager = Some(pager);
            s.internal = false;
            s.can_persist = can_persist;
        }
        o
    }

    /// A shadow of `backing`: empty, internal, deferring to `backing` for
    /// all unmodified data (paper §3.4). Takes a new reference to
    /// `backing`.
    pub fn new_shadow(size: u64, backing: &Arc<VmObject>, shadow_offset: u64) -> Arc<VmObject> {
        {
            let mut b = backing.state.lock();
            b.ref_count += 1;
            b.shadow_count += 1;
        }
        let o = VmObject::new_internal(size);
        {
            let mut s = o.state.lock();
            s.shadow = Some(Arc::clone(backing));
            s.shadow_offset = shadow_offset;
        }
        o
    }

    /// The object's unique id (its `paging_name` in paper terms).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Lock the object state.
    pub fn lock(&self) -> MutexGuard<'_, ObjState> {
        self.state.lock()
    }

    /// Try to lock the object state without blocking (the paging daemon
    /// skips contended objects rather than deadlocking — the "complex
    /// object locking rules" of paper §3.5).
    pub fn try_lock_state(&self) -> Option<MutexGuard<'_, ObjState>> {
        self.state.try_lock()
    }

    /// Take an additional mapping reference.
    pub fn reference(&self) {
        self.state.lock().ref_count += 1;
    }

    /// Length of the shadow chain hanging off this object (diagnostic;
    /// the quantity the collapse code exists to bound).
    pub fn chain_length(self: &Arc<VmObject>) -> usize {
        let mut n = 0;
        let mut cur = Arc::clone(self);
        loop {
            let next = cur.state.lock().shadow.clone();
            match next {
                Some(s) => {
                    n += 1;
                    cur = s;
                }
                None => return n,
            }
        }
    }
}

/// Free every resident page of a (being-terminated) object.
///
/// Pages an in-flight pageout has claimed busy are skipped — the
/// reclaimer frees them when its write completes (or, if the write
/// fails, a later daemon pass frees them once the object's `Weak` goes
/// dead). Claiming under the shard lock is what makes this safe against
/// a concurrent `claim_evict`: exactly one side wins the frame.
fn release_pages(obj: &VmObject, ctx: &CoreRefs) {
    let victims: Vec<PageId> = {
        let mut s = obj.state.lock();
        let offsets: Vec<u64> = s.resident.keys().copied().collect();
        let mut victims = Vec::new();
        for off in offsets {
            let page = s.resident[&off];
            if ctx.resident.claim_teardown(page, true) {
                s.resident.remove(&off);
                victims.push(page);
            }
        }
        victims
    };
    for page in victims {
        // No mapping (and no stale modify/reference attribute) may
        // survive the page's death.
        let pa = page.base(ctx.page_size);
        ctx.machdep.remove_all(pa, ctx.page_size);
        ctx.machdep.clear_modify(pa, ctx.page_size);
        ctx.machdep.clear_reference(pa, ctx.page_size);
        ctx.resident.with_page(page, |p| {
            p.wire_count = 0;
        });
        ctx.resident.free_page(page);
    }
    obj.busy_wakeup.notify_all();
}

/// Quarantine `obj` after its pager died — for real (its port vanished)
/// or by injection ([`crate::inject::InjectKind::PagerDeath`]).
///
/// Marks the object dead so every fault blocked on it wakes *now* and
/// fails with [`crate::types::VmError::PagerDied`] (instead of burning the
/// full `pager_timeout`), and future faults fail fast without ever
/// messaging the corpse. Resident pages are torn down — the cache has
/// lost its backing store — except busy or wired ones, whose owners
/// (an in-flight fill or pageout) will release them against the dead
/// flag. Idempotent; the caller must hold no object locks.
pub fn quarantine(obj: &Arc<VmObject>, ctx: &CoreRefs) {
    let victims: Vec<PageId> = {
        let mut s = obj.state.lock();
        if s.pager_dead {
            return;
        }
        s.pager_dead = true;
        let offsets: Vec<u64> = s.resident.keys().copied().collect();
        let mut victims = Vec::new();
        for off in offsets {
            let page = s.resident[&off];
            // Atomic claim: a page a concurrent reclaimer has already
            // claimed busy is left to that reclaimer.
            if ctx.resident.claim_teardown(page, false) {
                s.resident.remove(&off);
                victims.push(page);
            }
        }
        victims
    };
    for page in victims {
        let pa = page.base(ctx.page_size);
        ctx.machdep.remove_all(pa, ctx.page_size);
        ctx.machdep.clear_modify(pa, ctx.page_size);
        ctx.machdep.clear_reference(pa, ctx.page_size);
        ctx.resident.free_page(page);
    }
    ctx.stats.pager_deaths.fetch_add(1, Ordering::Relaxed);
    obj.busy_wakeup.notify_all();
}

/// Terminate `obj`: free pages, notify the pager, release the shadow
/// reference. The caller must hold **no** object locks.
pub fn terminate(obj: &Arc<VmObject>, ctx: &CoreRefs) {
    let (pager, shadow) = {
        let mut s = obj.state.lock();
        if s.terminated {
            return;
        }
        s.terminated = true;
        (s.pager.take(), s.shadow.take())
    };
    finish_terminate(obj, ctx, pager, shadow);
}

/// The tail of termination, after the `terminated` flag has been claimed
/// (and `pager`/`shadow` taken) under the object lock — split out so the
/// cache reaper can claim its victim under the cache shard lock (which
/// excludes concurrent revival through the live index) and still run the
/// teardown without any lock held.
fn finish_terminate(
    obj: &Arc<VmObject>,
    ctx: &CoreRefs,
    pager: Option<Arc<dyn Pager>>,
    shadow: Option<Arc<VmObject>>,
) {
    if let Some(ident) = pager.as_ref().and_then(|p| p.ident()) {
        ctx.cache.unregister_live(&ident, obj);
    }
    release_pages(obj, ctx);
    if let Some(p) = pager {
        // Trace first: `terminate` may tear down the pager-side binding
        // that `port_id` attributes the event to.
        ctx.trace_emit(
            0,
            obj.id(),
            0,
            crate::trace::TraceEvent::PagerRequest {
                msg: crate::trace::PagerMsg::Terminate,
                pager: p.port_id(obj.id()),
                causal: crate::trace::current_causal(),
            },
        );
        p.terminate(obj.id());
    }
    if let Some(sh) = shadow {
        {
            let mut b = sh.state.lock();
            b.shadow_count = b.shadow_count.saturating_sub(1);
        }
        deallocate(&sh, ctx);
        // Fork teardown just removed a shadower: the surviving chain
        // below the junction may now be collapsible (one branch of a
        // fork diamond died). `collapse` no-ops on terminated objects.
        collapse(&sh, ctx);
    }
}

/// Drop one reference; the last reference terminates the object or parks
/// it in the object cache (`pager_cache` semantics).
pub fn deallocate(obj: &Arc<VmObject>, ctx: &CoreRefs) {
    let cache_me = {
        let mut s = obj.state.lock();
        assert!(s.ref_count > 0, "over-deallocation of object {}", obj.id());
        s.ref_count -= 1;
        if s.ref_count > 0 {
            return;
        }
        s.can_persist && !s.terminated && s.pager.is_some()
    };
    if cache_me {
        {
            let _oc = ctx.prof_span(crate::profile::SpanKind::ObjectCache);
            ctx.cache.insert(obj, ctx);
        }
        if ctx.health.is_enabled() {
            ctx.health.cache_occupancy(ctx.cache.len() as u64);
        }
    } else {
        terminate(obj, ctx);
        try_collapse_dropped(obj);
    }
}

fn try_collapse_dropped(_obj: &Arc<VmObject>) {
    // Chains referencing the dead object were already fixed by
    // `terminate` moving the shadow reference; nothing further to do.
}

/// Shadow-chain garbage collection (paper §3.5): "Mach automatically
/// garbage collects shadow objects when it recognizes that an intermediate
/// shadow is no longer needed."
///
/// Three transformations, applied until none fires:
///
/// - **collapse**: the backing object is internal and referenced only by
///   `obj`, so its pages are *moved* up (no copy) and the backing object
///   disappears from the chain;
/// - **bypass**: `obj` already has every page in its window resident, so
///   the backing object can be skipped entirely;
/// - **obscured splice**: every page the backing object actually holds
///   within `obj`'s window is shadowed by `obj`'s own copy, and no map
///   entry references the backing object directly — `obj` can then link
///   straight to the deeper shadow even though other chains keep the
///   backing object alive (the fork-diamond case bypass cannot touch).
///
/// # Invariants
///
/// Only **internal, pagerless, quiescent** backing objects are ever
/// restructured (`collapse_level`'s guard): a pager could supply pages we
/// cannot see, and an in-progress pageout pins the page list. Lock order
/// is front-then-backing (top-down, matching the fault path's shadow
/// descent), and page moves go through [`crate::page::ResidentTable`]
/// `rekey` so physical page identity stays consistent. Obscured-ness is
/// stable: a shadowed object with no direct map references can never
/// *gain* resident pages (nothing faults on it), so a splice decided
/// under both locks stays valid after they drop.
///
/// Beyond the historical trigger (a COW write that hit its backing
/// object), this runs proactively from fork teardown
/// (`finish_terminate`), the pageout sweep, and deep-chain faults, so
/// fleet workloads with thousands of forks keep bounded chain depth —
/// the `shadow_depth` health gauge is the acceptance check.
pub fn collapse(obj: &Arc<VmObject>, ctx: &CoreRefs) {
    if !ctx.collapse_enabled.load(Ordering::Relaxed) {
        return; // ablation: let chains grow
    }
    // Apply transformations at every level of the chain: an intermediate
    // shadow often becomes garbage only after the task holding it exits,
    // which a check at the top level alone would never notice.
    let mut cur = Arc::clone(obj);
    loop {
        collapse_level(&cur, ctx);
        let next = cur.state.lock().shadow.clone();
        match next {
            Some(n) => cur = n,
            None => return,
        }
    }
}

/// Apply collapse/bypass at `obj` ↔ `obj.shadow` until neither fires.
fn collapse_level(obj: &Arc<VmObject>, ctx: &CoreRefs) {
    loop {
        let backing = {
            let s = obj.state.lock();
            match &s.shadow {
                Some(b) => Arc::clone(b),
                None => return,
            }
        };
        // Lock order: front object, then backing (top-down).
        let mut s = obj.state.lock();
        // Re-check: the chain may have changed while unlocked.
        let unchanged = matches!(&s.shadow, Some(b) if Arc::ptr_eq(b, &backing));
        if !unchanged {
            drop(s);
            continue;
        }
        let mut b = backing.state.lock();
        if !b.internal || b.pager.is_some() || b.terminated || b.paging_in_progress > 0 {
            return;
        }
        if b.ref_count == 1 && b.shadow_count == 1 {
            // --- Full collapse: steal the backing object's pages. ---
            let delta = s.shadow_offset;
            let pages: Vec<(u64, PageId)> = std::mem::take(&mut b.resident).into_iter().collect();
            let mut orphans = Vec::new();
            for (boff, page) in pages {
                let in_window = boff >= delta && boff - delta < s.size;
                if in_window && !s.resident.contains_key(&(boff - delta)) {
                    let ooff = boff - delta;
                    ctx.resident
                        .rekey(page, obj.id(), ooff, Arc::downgrade(obj));
                    s.resident.insert(ooff, page);
                } else {
                    orphans.push(page);
                }
            }
            // Splice the backing object out of the chain.
            s.shadow = b.shadow.take();
            s.shadow_offset = delta + b.shadow_offset;
            b.terminated = true;
            b.ref_count = 0;
            drop(b);
            drop(s);
            for page in orphans {
                let pa = page.base(ctx.page_size);
                ctx.machdep.remove_all(pa, ctx.page_size);
                ctx.machdep.clear_modify(pa, ctx.page_size);
                ctx.machdep.clear_reference(pa, ctx.page_size);
                ctx.resident.free_page(page);
            }
            ctx.stats.collapses.fetch_add(1, Ordering::Relaxed);
            ctx.trace_emit(0, obj.id(), 0, crate::trace::TraceEvent::ShadowCollapse);
            continue;
        }
        // --- Bypass: obj obscures the whole window by itself. ---
        let page = ctx.page_size;
        let covered = (0..s.size / page).all(|i| s.resident.contains_key(&(i * page)));
        if covered {
            let next = b.shadow.clone();
            if let Some(n) = &next {
                // The front object takes over the reference the backing
                // object held on the deeper shadow.
                n.state.lock().ref_count += 1;
                n.state.lock().shadow_count += 1;
            }
            s.shadow = next;
            s.shadow_offset += b.shadow_offset;
            b.shadow_count = b.shadow_count.saturating_sub(1);
            drop(b);
            drop(s);
            deallocate(&backing, ctx);
            ctx.stats.bypasses.fetch_add(1, Ordering::Relaxed);
            ctx.trace_emit(0, obj.id(), 0, crate::trace::TraceEvent::ShadowBypass);
            continue;
        }
        // --- Obscured splice: every page the backing object holds in our
        // window is shadowed by our own copy, and no map entry references
        // the backing object directly (all its references come from
        // shadowing objects), so looking through it and skipping it are
        // indistinguishable from here. Other chains keep it alive; this
        // chain drops a level. Accounted as a bypass (same chain effect).
        let delta = s.shadow_offset;
        let obscured = b.ref_count == b.shadow_count
            && b.resident
                .range(delta..delta.saturating_add(s.size))
                .all(|(&boff, _)| s.resident.contains_key(&(boff - delta)));
        if obscured {
            let next = b.shadow.clone();
            if let Some(n) = &next {
                let mut ns = n.state.lock();
                ns.ref_count += 1;
                ns.shadow_count += 1;
            }
            s.shadow = next;
            s.shadow_offset += b.shadow_offset;
            b.shadow_count = b.shadow_count.saturating_sub(1);
            drop(b);
            drop(s);
            deallocate(&backing, ctx);
            ctx.stats.bypasses.fetch_add(1, Ordering::Relaxed);
            ctx.trace_emit(0, obj.id(), 0, crate::trace::TraceEvent::ShadowBypass);
            continue;
        }
        return;
    }
}

/// Object-cache shard count (power of two).
pub const CACHE_SHARDS: usize = 8;

/// The cache of recently-used unreferenced memory objects (paper §3.3).
///
/// Sharded by pager identity so concurrent `map_file`/`deallocate`
/// streams on different CPUs do not serialize on one lock; eviction order
/// stays **globally** LRU via a monotonic stamp per parked entry (the
/// reaper scans shard minima, one shard lock at a time). The parked count
/// is a relaxed atomic so [`ObjectCache::len`] — polled by the health
/// gauges — never touches a shard lock.
#[derive(Debug)]
pub struct ObjectCache {
    capacity: usize,
    shards: Vec<Mutex<CacheShard>>,
    stamp: AtomicU64,
    parked: AtomicU64,
    /// The kernel's lock observatory (shard acquisitions below cost one
    /// relaxed load while it is disabled).
    locks: std::sync::Arc<crate::lockstat::LockStats>,
}

#[derive(Debug, Default)]
struct CacheShard {
    /// Parked (unreferenced) objects: ident → (LRU stamp, object).
    map: HashMap<PagerIdent, (u64, Arc<VmObject>)>,
    /// Every *live* pager-backed object, so concurrent mappings of the
    /// same backing store share one object (one physical copy of the
    /// pages), exactly as Mach's port→object association did.
    live: HashMap<PagerIdent, std::sync::Weak<VmObject>>,
}

impl ObjectCache {
    /// A cache retaining up to `capacity` unreferenced objects.
    pub fn new(capacity: usize) -> ObjectCache {
        ObjectCache::new_with_locks(
            capacity,
            std::sync::Arc::new(crate::lockstat::LockStats::new()),
        )
    }

    /// A cache sharing the kernel's lock observatory.
    pub fn new_with_locks(
        capacity: usize,
        locks: std::sync::Arc<crate::lockstat::LockStats>,
    ) -> ObjectCache {
        ObjectCache {
            capacity,
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            stamp: AtomicU64::new(1),
            parked: AtomicU64::new(0),
            locks,
        }
    }

    fn shard_lock(&self, i: usize) -> crate::lockstat::TrackedGuard<'_, CacheShard> {
        self.locks
            .lock(crate::lockstat::LockSite::ObjectCacheShard, &self.shards[i])
    }

    fn shard(&self, ident: &PagerIdent) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        ident.hash(&mut h);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    /// Number of cached (parked) objects. Lock-free.
    pub fn len(&self) -> usize {
        self.parked.load(Ordering::Relaxed) as usize
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Park an unreferenced object. Evicts (terminates) the globally
    /// least-recently-parked object when full.
    ///
    /// Parking re-checks `ref_count == 0` under the shard *and* object
    /// locks: between the caller's deallocation and this call, a
    /// concurrent [`ObjectCache::lookup`] may have revived the object
    /// through the live index, and parking a referenced object would let
    /// the reaper terminate it out from under its mappings.
    pub fn insert(&self, obj: &Arc<VmObject>, ctx: &CoreRefs) {
        let ident = {
            let s = obj.lock();
            match s.pager.as_ref().and_then(|p| p.ident()) {
                Some(i) => i,
                None => {
                    drop(s);
                    terminate(obj, ctx);
                    return;
                }
            }
        };
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        {
            let shard = self.shard(&ident);
            let mut g = self.shard_lock(shard);
            let s = obj.state.lock();
            if s.ref_count > 0 || s.terminated {
                return; // revived (or died) while we were parking it
            }
            drop(s);
            if g.map.insert(ident, (stamp, Arc::clone(obj))).is_none() {
                self.parked.fetch_add(1, Ordering::Relaxed);
            }
        }
        while self.parked.load(Ordering::Relaxed) as usize > self.capacity {
            if !self.reap_one(ctx) {
                break;
            }
        }
    }

    /// Revive the cached object for `ident`, if present (the cheap-reuse
    /// path: a cache hit costs a hash lookup, not a disk).
    pub fn take(&self, ident: &PagerIdent) -> Option<Arc<VmObject>> {
        let mut g = self.shard_lock(self.shard(ident));
        let (_stamp, o) = g.map.remove(ident)?;
        self.parked.fetch_sub(1, Ordering::Relaxed);
        // Reference under the shard lock: every park/revive transition
        // serializes here, so two revivals can never share one count.
        o.state.lock().ref_count += 1;
        drop(g);
        Some(o)
    }

    /// Find the object for `ident`, parked *or live*: a parked object is
    /// revived (removed from the unreferenced pool), a live one gains a
    /// reference. One backing store, one object, one set of pages.
    ///
    /// Both paths take the reference while still holding the shard lock —
    /// the lock that [`ObjectCache::insert`] and [`ObjectCache::reap_one`]
    /// hold for their `ref_count == 0` decisions — so a revival and a
    /// park/reap of the same object are strictly ordered.
    pub fn lookup(&self, ident: &PagerIdent) -> Option<Arc<VmObject>> {
        let mut g = self.shard_lock(self.shard(ident));
        if let Some((_stamp, o)) = g.map.remove(ident) {
            self.parked.fetch_sub(1, Ordering::Relaxed);
            o.state.lock().ref_count += 1;
            drop(g);
            return Some(o);
        }
        if let Some(o) = g.live.get(ident).and_then(|w| w.upgrade()) {
            let mut s = o.state.lock();
            if !s.terminated {
                // The object may be unreferenced and mid-park in
                // `insert` (its Weak stays in the live index until
                // termination); taking the reference here under the
                // shard lock makes `insert`'s re-check skip the park.
                s.ref_count += 1;
                drop(s);
                drop(g);
                return Some(o);
            }
        }
        None
    }

    /// Register a freshly created pager-backed object as live.
    pub fn register_live(&self, ident: PagerIdent, obj: &Arc<VmObject>) {
        let shard = self.shard(&ident);
        self.shard_lock(shard)
            .live
            .insert(ident, Arc::downgrade(obj));
    }

    /// Forget a terminated object's live registration (only if it still
    /// names this object).
    pub fn unregister_live(&self, ident: &PagerIdent, obj: &VmObject) {
        let mut g = self.shard_lock(self.shard(ident));
        if let Some(w) = g.live.get(ident) {
            let same = w
                .upgrade()
                .map(|o| std::ptr::eq(Arc::as_ptr(&o), obj as *const _))
                .unwrap_or(true); // dead weak: safe to drop
            if same {
                g.live.remove(ident);
            }
        }
    }

    /// Terminate the globally least-recently-parked cached object to
    /// relieve memory pressure; returns `false` when the cache is empty.
    ///
    /// Scans every shard's minimum stamp holding one shard lock at a
    /// time, then re-locks the winning shard to claim the victim (a
    /// concurrent revival of the victim simply makes this pass a no-op).
    /// The claim — `terminated` set, pager and shadow taken, live-index
    /// entry dropped — happens under the shard lock, so a racing
    /// [`ObjectCache::lookup`] either revives the victim before the claim
    /// (the reaper backs off) or finds it terminated after; it can never
    /// hand out an object the reaper is tearing down.
    pub fn reap_one(&self, ctx: &CoreRefs) -> bool {
        let mut best: Option<(u64, usize, PagerIdent)> = None;
        for (i, _shard) in self.shards.iter().enumerate() {
            let g = self.shard_lock(i);
            for (ident, (stamp, _)) in &g.map {
                if best.as_ref().is_none_or(|(s, _, _)| stamp < s) {
                    best = Some((*stamp, i, ident.clone()));
                }
            }
        }
        let Some((stamp, shard, ident)) = best else {
            return false;
        };
        let victim = {
            let mut g = self.shard_lock(shard);
            match g.map.get(&ident) {
                Some((s, _)) if *s == stamp => {
                    let (_, o) = g.map.remove(&ident).expect("present");
                    self.parked.fetch_sub(1, Ordering::Relaxed);
                    let mut st = o.state.lock();
                    if st.ref_count > 0 || st.terminated {
                        None // revived through the live index; unparked, alive
                    } else {
                        st.terminated = true;
                        let pager = st.pager.take();
                        let shadow = st.shadow.take();
                        drop(st);
                        let same = g
                            .live
                            .get(&ident)
                            .map(|w| match w.upgrade() {
                                Some(l) => Arc::ptr_eq(&l, &o),
                                None => true, // dead weak: safe to drop
                            })
                            .unwrap_or(false);
                        if same {
                            g.live.remove(&ident);
                        }
                        Some((o, pager, shadow))
                    }
                }
                _ => None, // revived or re-parked concurrently
            }
        };
        if let Some((v, pager, shadow)) = victim {
            finish_terminate(&v, ctx, pager, shadow);
        }
        true
    }

    /// Drop every cached object (unmount / shutdown).
    pub fn clear(&self, ctx: &CoreRefs) {
        while self.reap_one(ctx) {}
    }
}
