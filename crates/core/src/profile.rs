//! Hierarchical span profiler: per-CPU cycle attribution over the
//! simulated clock.
//!
//! Spans measure the CPU's **elapsed timeline in cycle units** — system
//! cycles plus charged I/O wait converted at the model's clock rate
//! ([`Machine::elapsed_cycles`]) — so a `pager_wait` or `pageout` span
//! is as wide as the I/O it covers, and the causal decomposition of
//! [`crate::trace::TraceLog::causal_breakdowns`] (stamped off the same
//! clock) sums to the span total exactly.
//!
//! The paper's evaluation (§7, Tables 7-1/7-2) is an accounting of
//! *where time goes*; the trace ring ([`crate::trace`]) says what
//! happened, this module says which subsystem paid for it. Fault
//! handling is decomposed into map lookup, shadow-chain walk, pager
//! wait, zero fill, copy, `pmap_enter` and TLB shootdown; the pageout
//! daemon, the object cache and the pager service thread get spans of
//! their own (the full catalogue is [`SpanKind`], documented per
//! emission site in `docs/METRICS.md`).
//!
//! Contract, shared with [`crate::trace::TraceSink`]:
//!
//! 1. **Disabled profiling is a branch, not a lock.** [`Profiler::span`]
//!    costs one relaxed atomic load and returns an inert guard.
//! 2. **The profiler never charges cycles.** It only *reads* the
//!    emitting CPU's simulated clock, so enabling it changes no
//!    simulated-time measurement — the observer stays off the books.
//! 3. **Spans are RAII.** A [`SpanGuard`] closes on drop, so early
//!    returns, `?` and chaos-injected failures all balance; the
//!    property tests in `tests/profile_props.rs` hold the profiler to
//!    this.
//!
//! Attribution is per call *path*: time spent in `pmap_enter` under a
//! fault is a different row from `pmap_enter` elsewhere, which is what
//! lets [`ProfileReport`] render a self-time/total-time tree.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mach_hw::machine::Machine;
use parking_lot::Mutex;

/// The profiled subsystems. Each variant is one emission site class;
/// `docs/METRICS.md` maps every variant to its code location and paper
/// section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole `vm_fault` (§3.6), enclosing the decomposed phases.
    Fault,
    /// Address-map resolution (§3.2's "last fault" hint and entry list).
    MapLookup,
    /// The object/shadow-chain walk of the fault handler (§3.5).
    ShadowWalk,
    /// Waiting on a pager: `pager_data_request` round trips and busy
    /// pages (§3.3).
    PagerWait,
    /// Zero-filling a fresh page.
    ZeroFill,
    /// Copying a page (COW push, §3.4, or pager-supplied data).
    Copy,
    /// Entering the mapping into the pmap (§4).
    PmapEnter,
    /// A coalesced TLB-shootdown round (§5.2), emitted by the pmap
    /// chassis through the kernel's span hook.
    Shootdown,
    /// The paging daemon's reclaim scan (§3.1).
    Pageout,
    /// Object-cache insert/lookup/reap (`pager_cache` semantics).
    ObjectCache,
    /// The per-object pager service thread handling a Table 3-2 message.
    PagerService,
}

impl SpanKind {
    /// Stable lower-case name, used in reports and `BENCH_vm.json`.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Fault => "fault",
            SpanKind::MapLookup => "map_lookup",
            SpanKind::ShadowWalk => "shadow_walk",
            SpanKind::PagerWait => "pager_wait",
            SpanKind::ZeroFill => "zero_fill",
            SpanKind::Copy => "copy",
            SpanKind::PmapEnter => "pmap_enter",
            SpanKind::Shootdown => "shootdown",
            SpanKind::Pageout => "pageout",
            SpanKind::ObjectCache => "object_cache",
            SpanKind::PagerService => "pager_service",
        }
    }
}

/// Aggregated cycles for one call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// Spans closed on this path.
    pub count: u64,
    /// Inclusive cycles (span open → close).
    pub total_cycles: u64,
    /// Exclusive cycles (total minus enclosed child spans).
    pub self_cycles: u64,
}

/// One open span on a CPU's stack.
#[derive(Debug)]
struct Open {
    kind: SpanKind,
    token: u64,
    start: u64,
    /// Cycles already attributed to closed children.
    child: u64,
}

#[derive(Debug, Default)]
struct CpuProf {
    stack: Vec<Open>,
    nodes: BTreeMap<Vec<SpanKind>, SpanTotals>,
}

/// The kernel-wide profiler: one span stack and path table per CPU,
/// behind an enable flag. Lives in [`crate::CoreRefs`].
#[derive(Debug)]
pub struct Profiler {
    enabled: AtomicBool,
    /// Bumped by [`Profiler::enable`]; a guard opened under an older
    /// epoch closes as a no-op instead of unbalancing the fresh capture.
    epoch: AtomicU64,
    next_token: AtomicU64,
    cpus: Vec<Mutex<CpuProf>>,
}

impl Profiler {
    /// A disabled profiler with one span stack per CPU.
    pub fn new(n_cpus: usize) -> Profiler {
        Profiler {
            enabled: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            next_token: AtomicU64::new(0),
            cpus: (0..n_cpus.max(1))
                .map(|_| Mutex::new(CpuProf::default()))
                .collect(),
        }
    }

    /// Start a capture, discarding any previous one. Spans still open
    /// from before the enable are orphaned (their guards no-op).
    pub fn enable(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for c in &self.cpus {
            let mut g = c.lock();
            g.stack.clear();
            g.nodes.clear();
        }
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stop capturing (accumulated totals remain until the next enable;
    /// already-open spans still close and attribute).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether the profiler is currently capturing.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span of `kind` on the current CPU. When disabled this is
    /// one relaxed atomic load and an inert guard — the tracing
    /// contract. Never charges simulated cycles.
    #[inline]
    pub fn span<'a>(&'a self, machine: &'a Machine, kind: SpanKind) -> SpanGuard<'a> {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard { ctx: None };
        }
        let (cpu, token, epoch) = self.open(machine, kind);
        SpanGuard {
            ctx: Some(SpanCtx {
                prof: self,
                machine,
                cpu,
                token,
                epoch,
            }),
        }
    }

    /// Like [`Profiler::span`] but owning its references, for callers
    /// that cannot carry a lifetime — the pmap chassis's shootdown span
    /// hook boxes this as an opaque guard.
    #[inline]
    pub fn span_owned(self: &Arc<Self>, machine: &Arc<Machine>, kind: SpanKind) -> OwnedSpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return OwnedSpanGuard { ctx: None };
        }
        let (cpu, token, epoch) = self.open(machine, kind);
        OwnedSpanGuard {
            ctx: Some(OwnedSpanCtx {
                prof: Arc::clone(self),
                machine: Arc::clone(machine),
                cpu,
                token,
                epoch,
            }),
        }
    }

    fn open(&self, machine: &Machine, kind: SpanKind) -> (usize, u64, u64) {
        let cpu = machine.current_cpu().min(self.cpus.len() - 1);
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let start = machine.elapsed_cycles();
        self.cpus[cpu].lock().stack.push(Open {
            kind,
            token,
            start,
            child: 0,
        });
        (cpu, token, epoch)
    }

    fn close(&self, machine: &Machine, cpu: usize, token: u64, epoch: u64) {
        if self.epoch.load(Ordering::Relaxed) != epoch {
            return; // re-enabled mid-span: the stack was reset
        }
        let now = machine.elapsed_cycles();
        let mut g = self.cpus[cpu].lock();
        // The span is normally on top; an unbound helper thread sharing
        // this CPU slot may have stacked entries above it, so search.
        let Some(pos) = g.stack.iter().rposition(|e| e.token == token) else {
            return;
        };
        let open = g.stack.remove(pos);
        let total = now.saturating_sub(open.start);
        let self_t = total.saturating_sub(open.child);
        let mut path: Vec<SpanKind> = g.stack[..pos].iter().map(|e| e.kind).collect();
        path.push(open.kind);
        let node = g.nodes.entry(path).or_default();
        node.count += 1;
        node.total_cycles += total;
        node.self_cycles += self_t;
        if pos > 0 {
            g.stack[pos - 1].child += total;
        }
    }

    /// Spans currently open across all CPUs (0 once every guard has
    /// dropped — the balance invariant the property tests assert).
    pub fn open_spans(&self) -> usize {
        self.cpus.iter().map(|c| c.lock().stack.len()).sum()
    }

    /// Merge every CPU's path table into one report.
    pub fn report(&self) -> ProfileReport {
        let mut nodes: BTreeMap<Vec<SpanKind>, SpanTotals> = BTreeMap::new();
        for c in &self.cpus {
            let g = c.lock();
            for (path, n) in &g.nodes {
                let e = nodes.entry(path.clone()).or_default();
                e.count += n.count;
                e.total_cycles += n.total_cycles;
                e.self_cycles += n.self_cycles;
            }
        }
        ProfileReport {
            rows: nodes
                .into_iter()
                .map(|(path, totals)| ProfileRow { path, totals })
                .collect(),
        }
    }
}

/// A borrowed RAII span; closes (and attributes) on drop.
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard<'a> {
    ctx: Option<SpanCtx<'a>>,
}

struct SpanCtx<'a> {
    prof: &'a Profiler,
    machine: &'a Machine,
    cpu: usize,
    token: u64,
    epoch: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.ctx.take() {
            c.prof.close(c.machine, c.cpu, c.token, c.epoch);
        }
    }
}

/// An owning RAII span (see [`Profiler::span_owned`]).
#[must_use = "a span measures the scope holding the guard"]
pub struct OwnedSpanGuard {
    ctx: Option<OwnedSpanCtx>,
}

struct OwnedSpanCtx {
    prof: Arc<Profiler>,
    machine: Arc<Machine>,
    cpu: usize,
    token: u64,
    epoch: u64,
}

impl Drop for OwnedSpanGuard {
    fn drop(&mut self) {
        if let Some(c) = self.ctx.take() {
            c.prof.close(&c.machine, c.cpu, c.token, c.epoch);
        }
    }
}

/// One rendered row: a call path and its aggregated cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// The span path, root first (e.g. `[Fault, PmapEnter, Shootdown]`).
    pub path: Vec<SpanKind>,
    /// Aggregated cycles for this path.
    pub totals: SpanTotals,
}

/// A merged profile capture, rendered as a self-time/total-time tree.
/// Paths sort lexicographically, so children follow their parents.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Rows in path order.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregate for one exact path, if captured.
    pub fn path_totals(&self, path: &[SpanKind]) -> Option<SpanTotals> {
        self.rows.iter().find(|r| r.path == path).map(|r| r.totals)
    }

    /// Sum over every path ending in `kind` (a subsystem's cost wherever
    /// it was entered from).
    pub fn leaf_totals(&self, kind: SpanKind) -> SpanTotals {
        let mut t = SpanTotals::default();
        for r in &self.rows {
            if r.path.last() == Some(&kind) {
                t.count += r.totals.count;
                t.total_cycles += r.totals.total_cycles;
                t.self_cycles += r.totals.self_cycles;
            }
        }
        t
    }

    /// Exclusive cycles per span kind, summed over all paths — the flat
    /// "where did the cycles go" view.
    pub fn self_time_by_kind(&self) -> BTreeMap<SpanKind, u64> {
        let mut out = BTreeMap::new();
        for r in &self.rows {
            if let Some(&k) = r.path.last() {
                *out.entry(k).or_insert(0) += r.totals.self_cycles;
            }
        }
        out
    }

    /// Direct children of `path` (rows exactly one element longer).
    pub fn children_of(&self, path: &[SpanKind]) -> Vec<&ProfileRow> {
        self.rows
            .iter()
            .filter(|r| r.path.len() == path.len() + 1 && r.path.starts_with(path))
            .collect()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "  (no spans captured)");
        }
        writeln!(
            f,
            "  {:<34} {:>8} {:>12} {:>12}",
            "span", "count", "total cyc", "self cyc"
        )?;
        for r in &self.rows {
            let depth = r.path.len() - 1;
            let name = format!(
                "{}{}",
                "  ".repeat(depth),
                r.path.last().map(|k| k.name()).unwrap_or("?")
            );
            writeln!(
                f,
                "  {:<34} {:>8} {:>12} {:>12}",
                name, r.totals.count, r.totals.total_cycles, r.totals.self_cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mach_hw::machine::{Machine, MachineModel};

    fn machine() -> Arc<Machine> {
        Machine::boot(MachineModel::micro_vax_ii())
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let m = machine();
        let p = Profiler::new(m.n_cpus());
        {
            let _s = p.span(&m, SpanKind::Fault);
        }
        assert_eq!(p.open_spans(), 0);
        assert!(p.report().is_empty());
    }

    #[test]
    fn nested_spans_attribute_child_and_self_time() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let p = Profiler::new(m.n_cpus());
        p.enable();
        {
            let _f = p.span(&m, SpanKind::Fault);
            m.charge(100);
            {
                let _l = p.span(&m, SpanKind::MapLookup);
                m.charge(40);
            }
            m.charge(60);
        }
        let rep = p.report();
        let fault = rep.path_totals(&[SpanKind::Fault]).unwrap();
        let lookup = rep
            .path_totals(&[SpanKind::Fault, SpanKind::MapLookup])
            .unwrap();
        assert_eq!(fault.count, 1);
        assert_eq!(lookup.count, 1);
        assert_eq!(fault.total_cycles, 200);
        assert_eq!(lookup.total_cycles, 40);
        assert_eq!(lookup.self_cycles, 40);
        assert_eq!(fault.self_cycles, 160);
        assert_eq!(
            fault.self_cycles + lookup.total_cycles,
            fault.total_cycles,
            "self + children == total"
        );
        assert_eq!(p.open_spans(), 0);
    }

    #[test]
    fn same_kind_on_different_paths_is_different_rows() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let p = Profiler::new(m.n_cpus());
        p.enable();
        {
            let _f = p.span(&m, SpanKind::Fault);
            let _e = p.span(&m, SpanKind::PmapEnter);
            m.charge(10);
        }
        {
            let _e = p.span(&m, SpanKind::PmapEnter);
            m.charge(5);
        }
        let rep = p.report();
        assert_eq!(
            rep.path_totals(&[SpanKind::Fault, SpanKind::PmapEnter])
                .unwrap()
                .count,
            1
        );
        assert_eq!(rep.path_totals(&[SpanKind::PmapEnter]).unwrap().count, 1);
        let leaf = rep.leaf_totals(SpanKind::PmapEnter);
        assert_eq!(leaf.count, 2);
        assert_eq!(leaf.total_cycles, 15);
    }

    #[test]
    fn re_enable_orphans_open_spans_without_unbalancing() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let p = Profiler::new(m.n_cpus());
        p.enable();
        let g = p.span(&m, SpanKind::Fault);
        p.enable(); // new capture while g is open
        drop(g); // closes as a no-op: older epoch
        assert_eq!(p.open_spans(), 0);
        assert!(p.report().is_empty());
    }

    #[test]
    fn owned_span_guard_attributes_like_borrowed() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let p = Arc::new(Profiler::new(m.n_cpus()));
        p.enable();
        {
            let _f = p.span(&m, SpanKind::PmapEnter);
            let g = p.span_owned(&m, SpanKind::Shootdown);
            m.charge(25);
            drop(g);
        }
        let rep = p.report();
        let sd = rep
            .path_totals(&[SpanKind::PmapEnter, SpanKind::Shootdown])
            .unwrap();
        assert_eq!(sd.count, 1);
        assert_eq!(sd.total_cycles, 25);
    }

    #[test]
    fn profiler_never_charges_cycles() {
        let m = machine();
        let _b = m.bind_cpu(0);
        let before = m.clock().system_cycles();
        let p = Profiler::new(m.n_cpus());
        p.enable();
        {
            let _f = p.span(&m, SpanKind::Fault);
            let _l = p.span(&m, SpanKind::MapLookup);
        }
        let _ = p.report();
        assert_eq!(
            m.clock().system_cycles(),
            before,
            "the observer must stay off the simulated books"
        );
    }
}
