//! Machine-independent value types: protections, inheritance, errors.

use std::fmt;

use mach_hw::addr::HwProt;

/// A virtual-memory protection value: some combination of read, write and
/// execute.
///
/// Each mapped region carries a *current* and a *maximum* protection
/// (paper §2.1): the current protection controls actual hardware
/// permissions; the maximum can only ever be lowered, and lowering it
/// below the current protection drags the current protection down.
///
/// # Examples
///
/// ```
/// use mach_vm::types::Protection;
/// let p = Protection::READ | Protection::WRITE;
/// assert!(p.contains(Protection::READ));
/// assert!(!p.contains(Protection::EXECUTE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Protection(u8);

impl Protection {
    /// No access.
    pub const NONE: Protection = Protection(0);
    /// Read access.
    pub const READ: Protection = Protection(1);
    /// Write access.
    pub const WRITE: Protection = Protection(2);
    /// Execute access.
    pub const EXECUTE: Protection = Protection(4);
    /// Read, write and execute.
    pub const ALL: Protection = Protection(7);
    /// The default protection of fresh allocations: read + write.
    pub const DEFAULT: Protection = Protection(3);

    /// Construct from raw bits.
    pub fn from_bits(bits: u8) -> Protection {
        Protection(bits & 7)
    }

    /// The raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True if every permission in `other` is present in `self`.
    pub fn contains(self, other: Protection) -> bool {
        self.0 & other.0 == other.0
    }

    /// The intersection of two protections.
    pub fn intersect(self, other: Protection) -> Protection {
        Protection(self.0 & other.0)
    }

    /// Remove `other`'s permissions.
    pub fn remove(self, other: Protection) -> Protection {
        Protection(self.0 & !other.0)
    }

    /// True if no access is allowed.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The hardware permissions this protection maps to.
    pub fn to_hw(self) -> HwProt {
        HwProt::from_bits(self.0)
    }
}

impl std::ops::BitOr for Protection {
    type Output = Protection;
    fn bitor(self, rhs: Protection) -> Protection {
        Protection(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Protection {
    fn bitor_assign(&mut self, rhs: Protection) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.contains(Protection::READ) {
                'r'
            } else {
                '-'
            },
            if self.contains(Protection::WRITE) {
                'w'
            } else {
                '-'
            },
            if self.contains(Protection::EXECUTE) {
                'x'
            } else {
                '-'
            },
        )
    }
}

/// What a child task receives for a region on `fork` (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Inheritance {
    /// Shared for read and write between parent and child.
    Shared,
    /// Logically copied by value (implemented copy-on-write).
    #[default]
    Copy,
    /// Not passed to the child; the child's range is left unallocated.
    None,
}

/// Errors returned by virtual-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// An address or size was not page-aligned.
    BadAlignment,
    /// The specified range is not (entirely) allocated.
    InvalidAddress,
    /// No free address range of the requested size exists.
    NoSpace,
    /// The requested access exceeds the region's protection.
    ProtectionFailure,
    /// Physical memory (or backing store) is exhausted.
    ResourceShortage,
    /// The memory object's pager reported the data unavailable.
    DataUnavailable,
    /// The memory object's pager is dead.
    PagerDied,
    /// The requested range collides with an existing allocation.
    AlreadyAllocated,
    /// Backing store reported a transient failure; a retry may succeed.
    DeviceBusy,
    /// Backing store reported an unrecoverable failure.
    DeviceError,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VmError::BadAlignment => "address or size not page aligned",
            VmError::InvalidAddress => "address range not allocated",
            VmError::NoSpace => "no free address range of that size",
            VmError::ProtectionFailure => "access exceeds region protection",
            VmError::ResourceShortage => "out of memory or backing store",
            VmError::DataUnavailable => "pager reports data unavailable",
            VmError::PagerDied => "memory object's pager is dead",
            VmError::AlreadyAllocated => "range collides with an existing allocation",
            VmError::DeviceBusy => "backing store busy, retry may succeed",
            VmError::DeviceError => "unrecoverable backing store error",
        })
    }
}

impl std::error::Error for VmError {}

/// Convenience alias for VM results.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_algebra() {
        let rw = Protection::READ | Protection::WRITE;
        assert_eq!(rw, Protection::DEFAULT);
        assert!(rw.contains(Protection::READ));
        assert!(!rw.contains(Protection::ALL));
        assert_eq!(rw.intersect(Protection::WRITE), Protection::WRITE);
        assert_eq!(rw.remove(Protection::WRITE), Protection::READ);
        assert!(Protection::NONE.is_none());
        assert_eq!(Protection::from_bits(0xFF), Protection::ALL);
    }

    #[test]
    fn protection_to_hw() {
        let hw = (Protection::READ | Protection::EXECUTE).to_hw();
        assert!(hw.allows_read());
        assert!(!hw.allows_write());
        assert!(hw.allows_execute());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Protection::DEFAULT.to_string(), "rw-");
        assert_eq!(Protection::NONE.to_string(), "---");
        assert_eq!(
            VmError::NoSpace.to_string(),
            "no free address range of that size"
        );
    }

    #[test]
    fn default_inheritance_is_copy() {
        // "By default, all inheritance values for an address space are set
        // to copy" — that is what makes fork a copy-on-write copy.
        assert_eq!(Inheritance::default(), Inheritance::Copy);
    }
}
