//! Chrome-trace (Perfetto) export of a captured [`TraceLog`].
//!
//! [`chrome_trace_json`] renders the trace as Chrome's JSON trace-event
//! format — loadable in `chrome://tracing` or <https://ui.perfetto.dev>
//! — with
//!
//! - one **track per simulated CPU** (process 0) carrying every paired
//!   fault as a duration slice named by its resolution,
//! - one **track per pager service** (process 1) carrying each causal
//!   chain's `queue_wait → service → transport → wake` decomposition as
//!   four adjacent slices, and
//! - a **flow arrow per causal id** from the faulting CPU's slice to the
//!   pager's, so following a fault to the service that resolved it is a
//!   click, not a grep.
//!
//! Timestamps are simulated cycles (the `ts` unit is nominally
//! microseconds; for a simulated clock the unit label is irrelevant and
//! the relative geometry is exact). The writer is hand-rolled like
//! `bench/src/json.rs` — no serde — and is a pure function of the log:
//! the same capture always renders to the **byte-identical** string
//! (asserted in `crates/bench`'s export-determinism test). Pager, task
//! and object ids are renumbered densely (sorted order → `0..n`) because
//! the raw ids come off process-global counters that drift run to run;
//! the export reflects the workload's shape, not counter history.

use std::fmt::Write as _;

use crate::trace::TraceLog;

/// Escape a string for a JSON string literal (control characters, quote,
/// backslash).
fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One trace event line under construction.
struct Ev {
    buf: String,
    first: bool,
}

impl Ev {
    fn new(ph: char, name: &str, cat: &str, pid: u64, tid: u64, ts: u64) -> Ev {
        let mut buf = String::from("  {\"ph\":\"");
        buf.push(ph);
        buf.push_str("\",\"name\":");
        esc(name, &mut buf);
        buf.push_str(",\"cat\":");
        esc(cat, &mut buf);
        let _ = write!(buf, ",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}");
        Ev { buf, first: true }
    }

    fn field_u64(mut self, key: &str, v: u64) -> Ev {
        let _ = write!(self.buf, ",\"{key}\":{v}");
        self
    }

    fn field_str(mut self, key: &str, v: &str) -> Ev {
        let _ = write!(self.buf, ",\"{key}\":");
        esc(v, &mut self.buf);
        self
    }

    fn arg_u64(mut self, key: &str, v: u64) -> Ev {
        self.open_args();
        let _ = write!(self.buf, "\"{key}\":{v}");
        self
    }

    fn arg_str(mut self, key: &str, v: &str) -> Ev {
        self.open_args();
        let _ = write!(self.buf, "\"{key}\":");
        esc(v, &mut self.buf);
        self
    }

    fn open_args(&mut self) {
        if self.first {
            self.buf.push_str(",\"args\":{");
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    fn finish(mut self, out: &mut Vec<String>) {
        if !self.first {
            self.buf.push('}');
        }
        self.buf.push('}');
        out.push(self.buf);
    }
}

/// The kernel-CPU process id in the exported trace.
const PID_KERNEL: u64 = 0;
/// The pager-services process id in the exported trace.
const PID_PAGERS: u64 = 1;

/// Dense renumbering of a set of process-global ids (pager ports, task
/// ids, object ids all come off global counters and drift run to run):
/// sorted unique ids map to `0..n`, keeping the export a pure function
/// of the workload's *shape* so regenerations are byte-identical.
struct Dense(Vec<u64>);

impl Dense {
    fn new(mut ids: Vec<u64>) -> Dense {
        ids.sort_unstable();
        ids.dedup();
        Dense(ids)
    }

    fn idx(&self, id: u64) -> u64 {
        self.0.binary_search(&id).unwrap_or(0) as u64
    }
}

/// Render `log` as Chrome trace-event JSON (see the module docs).
///
/// Purely a function of the log: equal logs render byte-identically.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut events: Vec<String> = Vec::new();

    // --- metadata: name the two processes and their tracks -------------
    Ev::new('M', "process_name", "__metadata", PID_KERNEL, 0, 0)
        .arg_str("name", "kernel CPUs")
        .finish(&mut events);
    Ev::new('M', "process_name", "__metadata", PID_PAGERS, 0, 0)
        .arg_str("name", "pager services")
        .finish(&mut events);

    let pairs = log.fault_pairs();
    let chains = log.causal_breakdowns();

    let mut cpus: Vec<u64> = pairs.iter().map(|p| u64::from(p.cpu)).collect();
    cpus.sort_unstable();
    cpus.dedup();
    for cpu in &cpus {
        Ev::new('M', "thread_name", "__metadata", PID_KERNEL, *cpu, 0)
            .arg_str("name", &format!("cpu {cpu}"))
            .finish(&mut events);
    }
    // Pager tracks are keyed by *dense index* in sorted-port order, not
    // raw port id — the same normalization `bench_json`'s per-pager rows
    // use, for the same reason (global counters drift run to run). Task
    // and object args get the identical treatment.
    let pagers = Dense::new(chains.iter().map(|c| c.pager).collect());
    let tasks = Dense::new(pairs.iter().map(|p| p.task).collect());
    let objects = Dense::new(
        pairs
            .iter()
            .map(|p| p.object)
            .chain(chains.iter().map(|c| c.object))
            .collect(),
    );
    for tid in 0..pagers.0.len() as u64 {
        Ev::new('M', "thread_name", "__metadata", PID_PAGERS, tid, 0)
            .arg_str("name", &format!("pager {tid}"))
            .finish(&mut events);
    }

    // --- fault slices, one per paired fault, on the CPU's track --------
    for p in &pairs {
        Ev::new(
            'X',
            &format!("{:?}", p.resolution),
            "fault",
            PID_KERNEL,
            u64::from(p.cpu),
            p.begin_cycles,
        )
        .field_u64("dur", p.latency_cycles())
        .arg_u64("fault_id", p.fault_id)
        .arg_u64("task", tasks.idx(p.task))
        .arg_u64("object", objects.idx(p.object))
        .arg_u64("offset", p.offset)
        .finish(&mut events);
    }

    // --- causal decompositions on the pager's track, plus flow arrows --
    for c in &chains {
        let mut ts = c.enqueue_cycles;
        for (name, dur) in [
            ("queue_wait", c.queue_wait),
            ("service", c.service_time),
            ("transport", c.transport),
            ("wake", c.wake),
        ] {
            Ev::new('X', name, "pager", PID_PAGERS, pagers.idx(c.pager), ts)
                .field_u64("dur", dur)
                .arg_u64("causal", c.causal)
                .arg_u64("object", objects.idx(c.object))
                .arg_u64("offset", c.offset)
                .arg_u64("depth", c.depth)
                .finish(&mut events);
            ts += dur;
        }
        // Flow arrow: from the faulting CPU at enqueue to the pager at
        // delivery. `id` joins the two halves; Perfetto draws the arrow.
        Ev::new(
            's',
            "pager_rpc",
            "causal",
            PID_KERNEL,
            u64::from(c.cpu),
            c.enqueue_cycles,
        )
        .field_u64("id", c.causal)
        .finish(&mut events);
        Ev::new(
            'f',
            "pager_rpc",
            "causal",
            PID_PAGERS,
            pagers.idx(c.pager),
            ts,
        )
        .field_str("bp", "e")
        .field_u64("id", c.causal)
        .finish(&mut events);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{
        CausalPhase, FaultResolution, TraceEvent, TraceLog, TraceRecord, TraceSink,
    };

    fn rec(seq: u64, cycles: u64, cpu: u32, object: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            cycles,
            cpu,
            task: 1,
            object,
            offset: 4096,
            event,
        }
    }

    fn sample_log() -> TraceLog {
        let chain = |seq, cycles, phase| {
            rec(
                seq,
                cycles,
                0,
                7,
                TraceEvent::PagerChain {
                    phase,
                    causal: 1,
                    pager: 42,
                    depth: 0,
                },
            )
        };
        TraceLog {
            records: vec![
                rec(0, 100, 0, 7, TraceEvent::FaultBegin { fault_id: 1 }),
                chain(1, 100, CausalPhase::Enqueue),
                chain(2, 150, CausalPhase::Dequeue),
                chain(3, 650, CausalPhase::Served),
                chain(4, 650, CausalPhase::Delivered),
                chain(5, 650, CausalPhase::Wake),
                rec(
                    6,
                    700,
                    0,
                    7,
                    TraceEvent::FaultEnd {
                        fault_id: 1,
                        resolution: FaultResolution::Pagein,
                    },
                ),
            ],
            written: 7,
        }
    }

    #[test]
    fn export_is_deterministic_and_structured() {
        let log = sample_log();
        let a = chrome_trace_json(&log);
        let b = chrome_trace_json(&log);
        assert_eq!(a, b, "pure function of the log");
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.ends_with("]}\n"));
        // One fault slice, four chain slices, one flow pair.
        assert_eq!(a.matches("\"ph\":\"X\"").count(), 5);
        assert_eq!(a.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(a.matches("\"ph\":\"f\"").count(), 1);
        assert!(a.contains("\"name\":\"queue_wait\""));
        assert!(a.contains("\"name\":\"Pagein\""));
        // The single pager (raw port 42) is remapped to dense track 0.
        assert!(a.contains("\"pager 0\""));
        assert!(
            !a.contains("42"),
            "raw port ids must not leak into the export"
        );
    }

    #[test]
    fn empty_log_exports_valid_skeleton() {
        let log = TraceSink::new(1).snapshot();
        let s = chrome_trace_json(&log);
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("kernel CPUs"));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        esc("a\"b\\c\nd", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
