//! Shared kernel context handed around the machine-independent layer.

use std::sync::Arc;

use mach_hw::machine::Machine;
use mach_pmap::MachDep;

use crate::health::HealthSink;
use crate::inject::Injector;
use crate::object::ObjectCache;
use crate::ops::{OpRecorder, VmOp};
use crate::page::ResidentTable;
use crate::pager::Pager;
use crate::profile::{Profiler, SpanGuard, SpanKind};
use crate::stats::VmStatsAtomic;
use crate::trace::{TraceEvent, TraceSink};

/// The references every machine-independent subsystem needs: the resident
/// page table, the machine-dependent module, the object cache and the
/// statistics block. One instance per booted kernel.
#[derive(Debug)]
pub struct CoreRefs {
    /// The simulated machine.
    pub machine: Arc<Machine>,
    /// The machine-dependent (pmap) module.
    pub machdep: Arc<dyn MachDep>,
    /// The resident page table.
    pub resident: Arc<ResidentTable>,
    /// The cache of unreferenced persistent objects.
    pub cache: Arc<ObjectCache>,
    /// Event counters.
    pub stats: Arc<VmStatsAtomic>,
    /// The default pager: backing store for anonymous memory at pageout.
    pub default_pager: Arc<dyn Pager>,
    /// The machine-independent page size (a power-of-two multiple of the
    /// hardware page size, fixed at boot — paper §3.1).
    pub page_size: u64,
    /// Ablation switch: disable shadow-chain garbage collection (§3.5) to
    /// measure what the collapse machinery is worth.
    pub collapse_enabled: std::sync::atomic::AtomicBool,
    /// Ablation switch: resolve hint-miss address-map lookups through the
    /// O(log n) ordered index (the default). Cleared, lookups fall back to
    /// the paper's pure linear entry walk — the reference implementation
    /// the index is property-tested against (`tests/map_index_props.rs`)
    /// and priced against in `BENCH_vm.json`'s `map_index_ablation` rows.
    /// Hint semantics and Table 2-1 accounting are identical either way;
    /// only the hint-miss search algorithm (and its charged cycles)
    /// changes.
    pub map_indexed: std::sync::atomic::AtomicBool,
    /// How long a fault waits on an unresponsive pager before declaring it
    /// dead (boot-time option; see [`crate::BootOptions::pager_timeout`]).
    pub pager_timeout: std::time::Duration,
    /// The VM event trace sink (disabled by default; a branch, not a
    /// lock, on every emission site — see [`crate::trace`]).
    pub trace: Arc<TraceSink>,
    /// The lock-contention observatory over the sharded layer (disabled
    /// by default; same one-relaxed-load contract — see
    /// [`crate::lockstat`]).
    pub locks: Arc<crate::lockstat::LockStats>,
    /// The deterministic fault-injection engine (inert unless the kernel
    /// booted with an [`crate::BootOptions::inject`] plan — see
    /// [`crate::inject`]).
    pub injector: Arc<Injector>,
    /// The span profiler (disabled by default; same one-relaxed-load
    /// contract as [`CoreRefs::trace`] — see [`crate::profile`]).
    pub profile: Arc<Profiler>,
    /// The structure-health gauges (disabled by default — see
    /// [`crate::health`]).
    pub health: Arc<HealthSink>,
    /// The replay-visible op recorder (disabled by default; same
    /// one-relaxed-load contract as [`CoreRefs::trace`] — see
    /// [`crate::ops`]).
    pub ops: Arc<OpRecorder>,
}

impl CoreRefs {
    /// Round `x` down to a page boundary.
    #[inline]
    pub fn trunc_page(&self, x: u64) -> u64 {
        x & !(self.page_size - 1)
    }

    /// Round `x` up to a page boundary.
    #[inline]
    pub fn round_page(&self, x: u64) -> u64 {
        (x + self.page_size - 1) & !(self.page_size - 1)
    }

    /// Emit a trace event stamped with the current CPU's simulated cycle
    /// clock. A single-branch no-op while tracing is disabled.
    #[inline]
    pub fn trace_emit(&self, task: u64, object: u64, offset: u64, event: TraceEvent) {
        self.trace.emit(&self.machine, task, object, offset, event);
    }

    /// Open a profiler span on the current CPU. An inert guard (one
    /// relaxed atomic load) while profiling is disabled.
    #[inline]
    pub fn prof_span(&self, kind: SpanKind) -> SpanGuard<'_> {
        self.profile.span(&self.machine, kind)
    }

    /// Record a replay-visible op stamped with the current CPU. A
    /// single-branch no-op while op recording is disabled.
    #[inline]
    pub fn record_op(&self, op: VmOp) {
        self.ops.record(&self.machine, op);
    }
}
