//! The resident page table (paper §3.1).
//!
//! "Physical memory in Mach is treated primarily as a cache for the
//! contents of virtual memory objects." Each machine-independent page has
//! an entry that may simultaneously be linked into:
//!
//! 1. a **memory object list** (kept in [`crate::object::VmObject`]),
//! 2. a **memory allocation queue** (free / active / inactive / wired,
//!    kept here, used by the paging daemon), and
//! 3. an **object/offset hash bucket** (kept here) for fast lookup at
//!    page-fault time.
//!
//! A Mach page is a boot-time power-of-two multiple of the hardware page
//! size and need not correspond to it (§3.1); this table deals only in
//! Mach pages.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Weak;

use mach_hw::addr::PAddr;
use parking_lot::Mutex;

use crate::object::VmObject;

/// A machine-independent page of physical memory, identified by
/// `physical address / page size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The base physical address of the page.
    pub fn base(self, page_size: u64) -> PAddr {
        PAddr(self.0 * page_size)
    }
}

/// Which allocation queue a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageQueue {
    /// Available for allocation.
    Free,
    /// Recently used.
    Active,
    /// Candidate for pageout.
    Inactive,
    /// Wired down; never paged out.
    Wired,
}

/// Mutable state of one resident page.
#[derive(Debug)]
pub struct PageInfo {
    /// Queue membership.
    pub queue: PageQueue,
    /// Owning object and byte offset within it (a page belongs to at most
    /// one memory object — paper §3.1).
    pub identity: Option<PageIdentity>,
    /// Page is being filled or cleaned; waiters block on the object.
    pub busy: bool,
    /// Someone is waiting for `busy` to clear.
    pub wanted: bool,
    /// Wiring count.
    pub wire_count: u32,
    /// Known-dirty hint (e.g. filled by a COW push); the pmap modify bit
    /// is the authoritative source at pageout time.
    pub dirty: bool,
}

/// The (object, offset) identity of a resident page.
#[derive(Debug, Clone)]
pub struct PageIdentity {
    /// Owning object's id (hash key).
    pub object_id: u64,
    /// Byte offset within the object.
    pub offset: u64,
    /// Back pointer for the pageout daemon.
    pub object: Weak<VmObject>,
}

#[derive(Debug, Default)]
struct RtInner {
    pages: HashMap<u64, PageInfo>,
    free: Vec<u64>,
    active: VecDeque<u64>,
    inactive: VecDeque<u64>,
    hash: HashMap<(u64, u64), u64>,
}

/// Counts exposed through `vm_statistics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounts {
    /// Pages on the free queue.
    pub free: u64,
    /// Pages on the active queue.
    pub active: u64,
    /// Pages on the inactive queue.
    pub inactive: u64,
    /// Wired pages.
    pub wired: u64,
}

/// The resident page table.
#[derive(Debug)]
pub struct ResidentTable {
    page_size: u64,
    inner: Mutex<RtInner>,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl ResidentTable {
    /// An empty table for `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> ResidentTable {
        assert!(page_size.is_power_of_two());
        ResidentTable {
            page_size,
            inner: Mutex::new(RtInner::default()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The machine-independent page size.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Donate a physical page (by id) to the free pool at boot.
    pub fn donate(&self, id: PageId) {
        let mut g = self.inner.lock();
        let prev = g.pages.insert(
            id.0,
            PageInfo {
                queue: PageQueue::Free,
                identity: None,
                busy: false,
                wanted: false,
                wire_count: 0,
                dirty: false,
            },
        );
        assert!(prev.is_none(), "page {id:?} donated twice");
        g.free.push(id.0);
    }

    /// Queue counts.
    pub fn counts(&self) -> PageCounts {
        let g = self.inner.lock();
        PageCounts {
            free: g.free.len() as u64,
            active: g.active.len() as u64,
            inactive: g.inactive.len() as u64,
            wired: g
                .pages
                .values()
                .filter(|p| p.queue == PageQueue::Wired)
                .count() as u64,
        }
    }

    /// Object/offset hash lookups and hits so far.
    pub fn lookup_stats(&self) -> (u64, u64) {
        (
            self.lookups.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// Allocate a free page for `(object, offset)`; the page starts
    /// **busy** on the active queue. `None` when the free pool is empty
    /// (the caller must reclaim and retry).
    pub fn alloc(&self, object_id: u64, offset: u64, object: Weak<VmObject>) -> Option<PageId> {
        let mut g = self.inner.lock();
        let id = g.free.pop()?;
        debug_assert!(!g.hash.contains_key(&(object_id, offset)));
        let info = g.pages.get_mut(&id).expect("free page exists");
        info.queue = PageQueue::Active;
        info.identity = Some(PageIdentity {
            object_id,
            offset,
            object,
        });
        info.busy = true;
        info.wanted = false;
        info.dirty = false;
        g.active.push_back(id);
        g.hash.insert((object_id, offset), id);
        Some(PageId(id))
    }

    /// The paper's fast fault-time lookup: hash on (object, offset).
    pub fn lookup(&self, object_id: u64, offset: u64) -> Option<PageId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let g = self.inner.lock();
        let r = g.hash.get(&(object_id, offset)).map(|&id| PageId(id));
        if r.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Run `f` on the page's mutable state.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&mut PageInfo) -> R) -> R {
        let mut g = self.inner.lock();
        f(g.pages.get_mut(&id.0).expect("known page"))
    }

    /// Move a page between queues.
    pub fn set_queue(&self, id: PageId, queue: PageQueue) {
        let mut g = self.inner.lock();
        let info = g.pages.get_mut(&id.0).expect("known page");
        let old = info.queue;
        if old == queue {
            return;
        }
        info.queue = queue;
        match old {
            PageQueue::Active => {
                g.active.retain(|&p| p != id.0);
            }
            PageQueue::Inactive => {
                g.inactive.retain(|&p| p != id.0);
            }
            PageQueue::Free => {
                g.free.retain(|&p| p != id.0);
            }
            PageQueue::Wired => {}
        }
        match queue {
            PageQueue::Active => g.active.push_back(id.0),
            PageQueue::Inactive => g.inactive.push_back(id.0),
            PageQueue::Free => g.free.push(id.0),
            PageQueue::Wired => {}
        }
    }

    /// Release a page back to the free pool, clearing its identity.
    pub fn free_page(&self, id: PageId) {
        let mut g = self.inner.lock();
        let old = {
            let info = g.pages.get_mut(&id.0).expect("known page");
            assert!(info.wire_count == 0, "cannot free a wired page");
            let ident = info.identity.take();
            let old = info.queue;
            info.queue = PageQueue::Free;
            info.busy = false;
            info.wanted = false;
            info.dirty = false;
            if let Some(ident) = ident {
                g.hash.remove(&(ident.object_id, ident.offset));
            }
            old
        };
        match old {
            PageQueue::Active => g.active.retain(|&p| p != id.0),
            PageQueue::Inactive => g.inactive.retain(|&p| p != id.0),
            PageQueue::Free => panic!("double free of {id:?}"),
            PageQueue::Wired => {}
        }
        g.free.push(id.0);
    }

    /// Change a page's identity (shadow-chain collapse moves pages between
    /// objects without copying them).
    ///
    /// # Panics
    ///
    /// Panics if the page has no identity or the target slot is taken.
    pub fn rekey(&self, id: PageId, new_object_id: u64, new_offset: u64, object: Weak<VmObject>) {
        let mut g = self.inner.lock();
        let info = g.pages.get_mut(&id.0).expect("known page");
        let ident = info.identity.as_mut().expect("page has identity");
        let old_key = (ident.object_id, ident.offset);
        ident.object_id = new_object_id;
        ident.offset = new_offset;
        ident.object = object;
        g.hash.remove(&old_key);
        let prev = g.hash.insert((new_object_id, new_offset), id.0);
        assert!(prev.is_none(), "rekey target already occupied");
    }

    /// Drop a page's (object, offset) identity — hash entry included —
    /// without freeing the frame. Used when a page leaves its object's
    /// resident list ahead of the frame being released (pageout writes
    /// the frame to backing store first): a concurrent fault must be
    /// able to allocate a *new* page for the same (object, offset)
    /// immediately.
    pub fn clear_identity(&self, id: PageId) {
        let mut g = self.inner.lock();
        if let Some(info) = g.pages.get_mut(&id.0) {
            if let Some(ident) = info.identity.take() {
                g.hash.remove(&(ident.object_id, ident.offset));
            }
        }
    }

    /// Atomically claim a page for eviction: only an un-busy, un-wired
    /// page still on the inactive queue can be claimed, and claiming
    /// marks it busy so no one else (fault handler or a concurrent
    /// reclaimer) touches it. Balance with [`ResidentTable::release_evict`]
    /// or [`ResidentTable::free_page`].
    pub fn claim_evict(&self, id: PageId) -> bool {
        let mut g = self.inner.lock();
        let Some(info) = g.pages.get_mut(&id.0) else {
            return false;
        };
        if info.queue != PageQueue::Inactive || info.busy || info.wire_count > 0 {
            return false;
        }
        info.busy = true;
        true
    }

    /// Release an eviction claim without freeing the page.
    pub fn release_evict(&self, id: PageId) {
        let mut g = self.inner.lock();
        if let Some(info) = g.pages.get_mut(&id.0) {
            info.busy = false;
        }
    }

    /// Oldest inactive pages (pageout candidates), up to `n`.
    pub fn inactive_candidates(&self, n: usize) -> Vec<PageId> {
        let g = self.inner.lock();
        g.inactive.iter().take(n).map(|&p| PageId(p)).collect()
    }

    /// Oldest active pages (for inactive-queue refill), up to `n`.
    pub fn active_candidates(&self, n: usize) -> Vec<PageId> {
        let g = self.inner.lock();
        g.active.iter().take(n).map(|&p| PageId(p)).collect()
    }

    /// Wire a page (pin it against pageout).
    pub fn wire(&self, id: PageId) {
        let mut g = self.inner.lock();
        let info = g.pages.get_mut(&id.0).expect("known page");
        info.wire_count += 1;
        if info.queue != PageQueue::Wired {
            let old = info.queue;
            info.queue = PageQueue::Wired;
            match old {
                PageQueue::Active => g.active.retain(|&p| p != id.0),
                PageQueue::Inactive => g.inactive.retain(|&p| p != id.0),
                PageQueue::Free => panic!("cannot wire a free page"),
                PageQueue::Wired => {}
            }
        }
    }

    /// Unwire; returns to the active queue when the count reaches zero.
    pub fn unwire(&self, id: PageId) {
        let mut g = self.inner.lock();
        let info = g.pages.get_mut(&id.0).expect("known page");
        assert!(info.wire_count > 0, "unwire of unwired page");
        info.wire_count -= 1;
        if info.wire_count == 0 {
            info.queue = PageQueue::Active;
            g.active.push_back(id.0);
        }
    }

    /// Every page currently belonging to `object_id` (diagnostics/tests).
    pub fn pages_of(&self, object_id: u64) -> Vec<(u64, PageId)> {
        let g = self.inner.lock();
        g.hash
            .iter()
            .filter(|((oid, _), _)| *oid == object_id)
            .map(|((_, off), &id)| (*off, PageId(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: u64) -> ResidentTable {
        let t = ResidentTable::new(4096);
        for i in 0..n {
            t.donate(PageId(i));
        }
        t
    }

    #[test]
    fn alloc_sets_identity_and_hash() {
        let t = table_with(4);
        let p = t.alloc(7, 8192, Weak::new()).unwrap();
        assert_eq!(t.lookup(7, 8192), Some(p));
        assert_eq!(t.lookup(7, 0), None);
        assert!(t.with_page(p, |i| i.busy));
        let c = t.counts();
        assert_eq!((c.free, c.active), (3, 1));
        // Stats: 2 lookups, 1 hit.
        assert_eq!(t.lookup_stats(), (2, 1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let t = table_with(1);
        assert!(t.alloc(1, 0, Weak::new()).is_some());
        assert!(t.alloc(1, 4096, Weak::new()).is_none());
    }

    #[test]
    fn free_clears_identity() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.free_page(p);
        assert_eq!(t.lookup(1, 0), None);
        assert_eq!(t.counts().free, 2);
        // The page can be reallocated with a new identity.
        let p2 = t.alloc(2, 4096, Weak::new()).unwrap();
        assert_eq!(t.lookup(2, 4096), Some(p2));
    }

    #[test]
    fn queue_transitions() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.set_queue(p, PageQueue::Inactive);
        let c = t.counts();
        assert_eq!((c.active, c.inactive), (0, 1));
        assert_eq!(t.inactive_candidates(8), vec![p]);
        t.set_queue(p, PageQueue::Active);
        assert_eq!(t.inactive_candidates(8), vec![]);
        assert_eq!(t.active_candidates(8), vec![p]);
    }

    #[test]
    fn wire_protects_from_queues() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.wire(p);
        assert_eq!(t.counts().wired, 1);
        assert!(t.active_candidates(8).is_empty());
        t.wire(p);
        t.unwire(p);
        assert_eq!(t.counts().wired, 1, "still wired once");
        t.unwire(p);
        assert_eq!(t.counts().wired, 0);
        assert_eq!(t.active_candidates(8), vec![p]);
    }

    #[test]
    #[should_panic(expected = "cannot free a wired page")]
    fn freeing_wired_page_panics() {
        let t = table_with(1);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.wire(p);
        t.free_page(p);
    }

    #[test]
    fn rekey_moves_hash_identity() {
        let t = table_with(1);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.rekey(p, 9, 12288, Weak::new());
        assert_eq!(t.lookup(1, 0), None);
        assert_eq!(t.lookup(9, 12288), Some(p));
        assert_eq!(t.pages_of(9), vec![(12288, p)]);
        assert!(t.pages_of(1).is_empty());
    }

    #[test]
    fn pages_of_lists_object_pages() {
        let t = table_with(3);
        let a = t.alloc(5, 0, Weak::new()).unwrap();
        let b = t.alloc(5, 4096, Weak::new()).unwrap();
        t.alloc(6, 0, Weak::new()).unwrap();
        let mut pages = t.pages_of(5);
        pages.sort();
        assert_eq!(pages, vec![(0, a), (4096, b)]);
    }

    #[test]
    fn page_base_address() {
        assert_eq!(PageId(3).base(4096), PAddr(12288));
    }

    #[test]
    #[should_panic(expected = "donated twice")]
    fn double_donation_panics() {
        let t = table_with(1);
        t.donate(PageId(0));
    }
}
