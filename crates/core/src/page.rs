//! The resident page table (paper §3.1).
//!
//! "Physical memory in Mach is treated primarily as a cache for the
//! contents of virtual memory objects." Each machine-independent page has
//! an entry that may simultaneously be linked into:
//!
//! 1. a **memory object list** (kept in [`crate::object::VmObject`]),
//! 2. a **memory allocation queue** (free / active / inactive / wired,
//!    kept here, used by the paging daemon), and
//! 3. an **object/offset hash bucket** (kept here) for fast lookup at
//!    page-fault time.
//!
//! A Mach page is a boot-time power-of-two multiple of the hardware page
//! size and need not correspond to it (§3.1); this table deals only in
//! Mach pages.
//!
//! # Concurrency
//!
//! The table is built for genuinely concurrent fault streams (one host
//! thread per simulated CPU):
//!
//! - **Page state and queues** live in [`QUEUE_SHARDS`] shards keyed by
//!   page id; the active/inactive deques are per-shard so the pageout
//!   daemon and faulting CPUs contend only within a shard.
//! - **The (object, offset) hash** lives in [`HASH_SHARDS`] shards keyed
//!   by a mix of object id and offset — the fault-time lookup path takes
//!   exactly one shard lock.
//! - **The free pool** is a per-CPU stack per possible CPU (slot picked
//!   by [`mach_hw::machine::bound_cpu`]) refilled in batches of
//!   [`REFILL_BATCH`] from a global reserve; when a local stack exceeds
//!   [`LOCAL_FREE_CAP`] half of it spills back. An empty reserve falls
//!   back to stealing from other CPUs' stacks, so no allocation fails
//!   while any free page exists anywhere.
//! - **Queue counts** are maintained as relaxed per-shard atomics, so
//!   [`ResidentTable::counts`] (called from `vm_statistics`, the daemon's
//!   pacing check and the health gauges) never takes a shard lock.
//!
//! Lock order within this module: page-state shard → hash shard →
//! free-list/reserve. No method ever holds two shards of the same kind at
//! once. Callers (fault, pageout, object teardown) take the owning
//! object's lock *before* any shard lock — see the lock hierarchy in
//! DESIGN.md §8.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use mach_hw::addr::PAddr;
use parking_lot::Mutex;

use crate::lockstat::{LockSite, LockStats};
use crate::object::VmObject;

/// Page-state/queue shard count (power of two).
pub const QUEUE_SHARDS: usize = 8;
/// (object, offset) hash shard count (power of two).
pub const HASH_SHARDS: usize = 8;
/// Pages moved from the global reserve to a CPU's free stack per refill.
pub const REFILL_BATCH: usize = 16;
/// A CPU free stack above this spills half back to the global reserve.
pub const LOCAL_FREE_CAP: usize = 64;

/// A machine-independent page of physical memory, identified by
/// `physical address / page size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The base physical address of the page.
    pub fn base(self, page_size: u64) -> PAddr {
        PAddr(self.0 * page_size)
    }
}

/// Which allocation queue a page is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageQueue {
    /// Available for allocation.
    Free,
    /// Recently used.
    Active,
    /// Candidate for pageout.
    Inactive,
    /// Wired down; never paged out.
    Wired,
}

/// Mutable state of one resident page.
#[derive(Debug)]
pub struct PageInfo {
    /// Queue membership.
    pub queue: PageQueue,
    /// Owning object and byte offset within it (a page belongs to at most
    /// one memory object — paper §3.1).
    pub identity: Option<PageIdentity>,
    /// Page is being filled or cleaned; waiters block on the object.
    pub busy: bool,
    /// Someone is waiting for `busy` to clear.
    pub wanted: bool,
    /// Wiring count.
    pub wire_count: u32,
    /// Known-dirty hint (e.g. filled by a COW push); the pmap modify bit
    /// is the authoritative source at pageout time.
    pub dirty: bool,
}

/// The (object, offset) identity of a resident page.
#[derive(Debug, Clone)]
pub struct PageIdentity {
    /// Owning object's id (hash key).
    pub object_id: u64,
    /// Byte offset within the object.
    pub offset: u64,
    /// Back pointer for the pageout daemon.
    pub object: Weak<VmObject>,
}

/// One page-state shard: the pages whose ids hash here, plus their
/// active/inactive queue segments.
#[derive(Debug, Default)]
struct RtShard {
    pages: HashMap<u64, PageInfo>,
    active: VecDeque<u64>,
    inactive: VecDeque<u64>,
}

/// Relaxed queue-length counters for one shard, maintained under the
/// shard lock but readable without it.
#[derive(Debug, Default)]
struct ShardTally {
    active: AtomicU64,
    inactive: AtomicU64,
    wired: AtomicU64,
}

/// Counts exposed through `vm_statistics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounts {
    /// Pages on the free queue.
    pub free: u64,
    /// Pages on the active queue.
    pub active: u64,
    /// Pages on the inactive queue.
    pub inactive: u64,
    /// Wired pages.
    pub wired: u64,
}

/// splitmix64 finalizer: cheap avalanche for shard selection.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The resident page table.
#[derive(Debug)]
pub struct ResidentTable {
    page_size: u64,
    /// Page state + queue segments, sharded by page id.
    shards: Vec<Mutex<RtShard>>,
    tallies: Vec<ShardTally>,
    /// (object, offset) → page id, sharded by key hash.
    hash: Vec<Mutex<HashMap<(u64, u64), u64>>>,
    /// Global free reserve (boot donations land here).
    reserve: Mutex<Vec<u64>>,
    /// Per-CPU free stacks, indexed by [`mach_hw::machine::bound_cpu`]
    /// modulo the slot count.
    locals: Vec<Mutex<Vec<u64>>>,
    free_len: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    /// The kernel's lock observatory; every shard/free-list acquisition
    /// below goes through it (one relaxed load when disabled).
    locks: Arc<LockStats>,
}

impl ResidentTable {
    /// An empty table for `page_size`-byte pages with one free-list slot
    /// (uniprocessor layout).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> ResidentTable {
        ResidentTable::with_cpus(page_size, 1)
    }

    /// An empty table with one per-CPU free-list slot per simulated CPU.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn with_cpus(page_size: u64, cpus: usize) -> ResidentTable {
        ResidentTable::with_cpus_locks(page_size, cpus, Arc::new(LockStats::new()))
    }

    /// An empty table sharing the kernel's lock observatory.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn with_cpus_locks(page_size: u64, cpus: usize, locks: Arc<LockStats>) -> ResidentTable {
        assert!(page_size.is_power_of_two());
        ResidentTable {
            page_size,
            shards: (0..QUEUE_SHARDS).map(|_| Mutex::default()).collect(),
            tallies: (0..QUEUE_SHARDS).map(|_| ShardTally::default()).collect(),
            hash: (0..HASH_SHARDS).map(|_| Mutex::default()).collect(),
            reserve: Mutex::new(Vec::new()),
            locals: (0..cpus.max(1)).map(|_| Mutex::default()).collect(),
            free_len: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            locks,
        }
    }

    /// The machine-independent page size.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of page-state/queue shards (for work-stealing sweeps).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn qs(&self, id: u64) -> usize {
        (mix(id) as usize) & (self.shards.len() - 1)
    }

    #[inline]
    fn hs(&self, object_id: u64, offset: u64) -> usize {
        (mix(object_id ^ offset.rotate_left(17)) as usize) & (self.hash.len() - 1)
    }

    #[inline]
    fn slot(&self) -> usize {
        mach_hw::machine::bound_cpu() % self.locals.len()
    }

    /// Donate a physical page (by id) to the free pool at boot.
    pub fn donate(&self, id: PageId) {
        {
            let mut g = self
                .locks
                .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
            let prev = g.pages.insert(
                id.0,
                PageInfo {
                    queue: PageQueue::Free,
                    identity: None,
                    busy: false,
                    wanted: false,
                    wire_count: 0,
                    dirty: false,
                },
            );
            assert!(prev.is_none(), "page {id:?} donated twice");
        }
        self.locks
            .lock(LockSite::FreeReserve, &self.reserve)
            .push(id.0);
        self.free_len.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue counts, read from relaxed per-shard counters — no shard lock
    /// is taken, so statistics and health gauges never stall a faulting
    /// CPU. Exact whenever the table is quiescent.
    pub fn counts(&self) -> PageCounts {
        let mut c = PageCounts {
            free: self.free_len.load(Ordering::Relaxed),
            ..PageCounts::default()
        };
        for t in &self.tallies {
            c.active += t.active.load(Ordering::Relaxed);
            c.inactive += t.inactive.load(Ordering::Relaxed);
            c.wired += t.wired.load(Ordering::Relaxed);
        }
        c
    }

    /// Object/offset hash lookups and hits so far.
    pub fn lookup_stats(&self) -> (u64, u64) {
        (
            self.lookups.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
        )
    }

    /// Pop a free page id: local stack, then a batched refill from the
    /// reserve, then stealing from other CPUs' stacks.
    fn take_free(&self) -> Option<u64> {
        let slot = self.slot();
        if let Some(id) = self
            .locks
            .lock(LockSite::FreeLocal, &self.locals[slot])
            .pop()
        {
            self.free_len.fetch_sub(1, Ordering::Relaxed);
            return Some(id);
        }
        let mut batch = {
            let mut r = self.locks.lock(LockSite::FreeReserve, &self.reserve);
            let take = REFILL_BATCH.min(r.len());
            let at = r.len() - take;
            r.split_off(at)
        };
        if let Some(id) = batch.pop() {
            if !batch.is_empty() {
                self.locks
                    .lock(LockSite::FreeLocal, &self.locals[slot])
                    .append(&mut batch);
            }
            self.free_len.fetch_sub(1, Ordering::Relaxed);
            return Some(id);
        }
        // Reserve dry: steal from another CPU's stack.
        for i in 1..=self.locals.len() {
            let other = (slot + i) % self.locals.len();
            if let Some(id) = self
                .locks
                .lock(LockSite::FreeLocal, &self.locals[other])
                .pop()
            {
                self.free_len.fetch_sub(1, Ordering::Relaxed);
                return Some(id);
            }
        }
        None
    }

    /// Return a page id to the free pool (local stack, spilling half to
    /// the reserve past [`LOCAL_FREE_CAP`]).
    fn give_free(&self, id: u64) {
        let slot = self.slot();
        let spill = {
            let mut l = self.locks.lock(LockSite::FreeLocal, &self.locals[slot]);
            l.push(id);
            if l.len() > LOCAL_FREE_CAP {
                let keep = l.len() / 2;
                Some(l.drain(..keep).collect::<Vec<u64>>())
            } else {
                None
            }
        };
        if let Some(batch) = spill {
            self.locks
                .lock(LockSite::FreeReserve, &self.reserve)
                .extend(batch);
        }
        self.free_len.fetch_add(1, Ordering::Relaxed);
    }

    /// Allocate a free page for `(object, offset)`; the page starts
    /// **busy** on the active queue. `None` when the free pool is empty
    /// (the caller must reclaim and retry).
    ///
    /// Callers serialize insertions for one (object, offset) with the
    /// object lock, so the gap between the state update and the hash
    /// insert is never observable for a racing fault on the same slot.
    pub fn alloc(&self, object_id: u64, offset: u64, object: Weak<VmObject>) -> Option<PageId> {
        let id = self.take_free()?;
        let s = self.qs(id);
        {
            let mut g = self.locks.lock(LockSite::PageQueueShard, &self.shards[s]);
            let info = g.pages.get_mut(&id).expect("free page exists");
            info.queue = PageQueue::Active;
            info.identity = Some(PageIdentity {
                object_id,
                offset,
                object,
            });
            info.busy = true;
            info.wanted = false;
            info.dirty = false;
            g.active.push_back(id);
            self.tallies[s].active.fetch_add(1, Ordering::Relaxed);
        }
        let mut h = self.locks.lock(
            LockSite::PageHashShard,
            &self.hash[self.hs(object_id, offset)],
        );
        debug_assert!(!h.contains_key(&(object_id, offset)));
        h.insert((object_id, offset), id);
        Some(PageId(id))
    }

    /// The paper's fast fault-time lookup: hash on (object, offset). One
    /// shard lock, no global serialization.
    pub fn lookup(&self, object_id: u64, offset: u64) -> Option<PageId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let g = self.locks.lock(
            LockSite::PageHashShard,
            &self.hash[self.hs(object_id, offset)],
        );
        let r = g.get(&(object_id, offset)).map(|&id| PageId(id));
        if r.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Run `f` on the page's mutable state.
    ///
    /// # Panics
    ///
    /// Panics if the page is unknown.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&mut PageInfo) -> R) -> R {
        let mut g = self
            .locks
            .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
        f(g.pages.get_mut(&id.0).expect("known page"))
    }

    /// Move a page between the active/inactive/wired queues.
    ///
    /// Silently does nothing if the page is currently **free**: queue
    /// moves are requested for candidate lists sampled without a claim
    /// (the daemon's refill sweep, a second-chance reactivation), so by
    /// the time the move runs the page may have been freed — or freed
    /// and be mid-`alloc` on another CPU. A free page leaves the free
    /// pool only through [`ResidentTable::alloc`]; anything else would
    /// race the free-list bookkeeping.
    pub fn set_queue(&self, id: PageId, queue: PageQueue) {
        let s = self.qs(id.0);
        let mut g = self.locks.lock(LockSite::PageQueueShard, &self.shards[s]);
        let info = g.pages.get_mut(&id.0).expect("known page");
        let old = info.queue;
        if old == queue || old == PageQueue::Free {
            return;
        }
        info.queue = queue;
        match old {
            PageQueue::Active => {
                g.active.retain(|&p| p != id.0);
                self.tallies[s].active.fetch_sub(1, Ordering::Relaxed);
            }
            PageQueue::Inactive => {
                g.inactive.retain(|&p| p != id.0);
                self.tallies[s].inactive.fetch_sub(1, Ordering::Relaxed);
            }
            PageQueue::Free => unreachable!("guarded above"),
            PageQueue::Wired => {
                self.tallies[s].wired.fetch_sub(1, Ordering::Relaxed);
            }
        }
        match queue {
            PageQueue::Active => {
                g.active.push_back(id.0);
                self.tallies[s].active.fetch_add(1, Ordering::Relaxed);
            }
            PageQueue::Inactive => {
                g.inactive.push_back(id.0);
                self.tallies[s].inactive.fetch_add(1, Ordering::Relaxed);
            }
            PageQueue::Free => self.give_free(id.0),
            PageQueue::Wired => {
                self.tallies[s].wired.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Release a page back to the free pool, clearing its identity.
    pub fn free_page(&self, id: PageId) {
        let s = self.qs(id.0);
        let ident = {
            let mut g = self.locks.lock(LockSite::PageQueueShard, &self.shards[s]);
            let info = g.pages.get_mut(&id.0).expect("known page");
            assert!(info.wire_count == 0, "cannot free a wired page");
            let ident = info.identity.take();
            let old = info.queue;
            info.queue = PageQueue::Free;
            info.busy = false;
            info.wanted = false;
            info.dirty = false;
            match old {
                PageQueue::Active => {
                    g.active.retain(|&p| p != id.0);
                    self.tallies[s].active.fetch_sub(1, Ordering::Relaxed);
                }
                PageQueue::Inactive => {
                    g.inactive.retain(|&p| p != id.0);
                    self.tallies[s].inactive.fetch_sub(1, Ordering::Relaxed);
                }
                PageQueue::Free => panic!("double free of {id:?}"),
                PageQueue::Wired => {
                    self.tallies[s].wired.fetch_sub(1, Ordering::Relaxed);
                }
            }
            ident
        };
        if let Some(ident) = ident {
            self.locks
                .lock(
                    LockSite::PageHashShard,
                    &self.hash[self.hs(ident.object_id, ident.offset)],
                )
                .remove(&(ident.object_id, ident.offset));
        }
        self.give_free(id.0);
    }

    /// Change a page's identity (shadow-chain collapse moves pages between
    /// objects without copying them).
    ///
    /// # Panics
    ///
    /// Panics if the page has no identity or the target slot is taken.
    pub fn rekey(&self, id: PageId, new_object_id: u64, new_offset: u64, object: Weak<VmObject>) {
        let old_key = {
            let mut g = self
                .locks
                .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
            let info = g.pages.get_mut(&id.0).expect("known page");
            let ident = info.identity.as_mut().expect("page has identity");
            let old_key = (ident.object_id, ident.offset);
            ident.object_id = new_object_id;
            ident.offset = new_offset;
            ident.object = object;
            old_key
        };
        self.locks
            .lock(
                LockSite::PageHashShard,
                &self.hash[self.hs(old_key.0, old_key.1)],
            )
            .remove(&old_key);
        let prev = self
            .locks
            .lock(
                LockSite::PageHashShard,
                &self.hash[self.hs(new_object_id, new_offset)],
            )
            .insert((new_object_id, new_offset), id.0);
        assert!(prev.is_none(), "rekey target already occupied");
    }

    /// Drop a page's (object, offset) identity — hash entry included —
    /// without freeing the frame. Used when a page leaves its object's
    /// resident list ahead of the frame being released (pageout writes
    /// the frame to backing store first): a concurrent fault must be
    /// able to allocate a *new* page for the same (object, offset)
    /// immediately.
    pub fn clear_identity(&self, id: PageId) {
        let ident = {
            let mut g = self
                .locks
                .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
            g.pages.get_mut(&id.0).and_then(|info| info.identity.take())
        };
        if let Some(ident) = ident {
            self.locks
                .lock(
                    LockSite::PageHashShard,
                    &self.hash[self.hs(ident.object_id, ident.offset)],
                )
                .remove(&(ident.object_id, ident.offset));
        }
    }

    /// Atomically claim a page for eviction: only an un-busy, un-wired
    /// page still on the inactive queue can be claimed, and claiming
    /// marks it busy so no one else (fault handler or a concurrent
    /// reclaimer) touches it. Balance with [`ResidentTable::release_evict`]
    /// or [`ResidentTable::free_page`].
    pub fn claim_evict(&self, id: PageId) -> bool {
        let mut g = self
            .locks
            .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
        let Some(info) = g.pages.get_mut(&id.0) else {
            return false;
        };
        if info.queue != PageQueue::Inactive || info.busy || info.wire_count > 0 {
            return false;
        }
        info.busy = true;
        true
    }

    /// Release an eviction claim without freeing the page.
    pub fn release_evict(&self, id: PageId) {
        let mut g = self
            .locks
            .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
        if let Some(info) = g.pages.get_mut(&id.0) {
            info.busy = false;
        }
    }

    /// Atomically claim a page for teardown (object termination,
    /// quarantine, pager-requested flush). Fails if the page is already
    /// busy — an in-flight fill or pageout owns it and will free or
    /// release it itself — or already free, or (unless `allow_wired`)
    /// wired. Claiming marks the page busy under the shard lock, so a
    /// concurrent [`ResidentTable::claim_evict`] and a teardown can never
    /// both think they own the same frame. Balance with
    /// [`ResidentTable::free_page`] or [`ResidentTable::release_evict`].
    pub fn claim_teardown(&self, id: PageId, allow_wired: bool) -> bool {
        let mut g = self
            .locks
            .lock(LockSite::PageQueueShard, &self.shards[self.qs(id.0)]);
        let Some(info) = g.pages.get_mut(&id.0) else {
            return false;
        };
        if info.busy || info.queue == PageQueue::Free || (!allow_wired && info.wire_count > 0) {
            return false;
        }
        info.busy = true;
        true
    }

    /// Oldest inactive pages (pageout candidates), up to `n`, sweeping
    /// shards from shard 0.
    pub fn inactive_candidates(&self, n: usize) -> Vec<PageId> {
        self.inactive_candidates_from(0, n)
    }

    /// Oldest inactive pages, up to `n`, sweeping shards starting at
    /// `start` — a reclaiming CPU scans "its" shard first and steals from
    /// the rest only as needed.
    pub fn inactive_candidates_from(&self, start: usize, n: usize) -> Vec<PageId> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            if out.len() >= n {
                break;
            }
            let g = self.locks.lock(
                LockSite::PageQueueShard,
                &self.shards[(start + i) % self.shards.len()],
            );
            out.extend(g.inactive.iter().take(n - out.len()).map(|&p| PageId(p)));
        }
        out
    }

    /// Oldest active pages (for inactive-queue refill), up to `n`.
    pub fn active_candidates(&self, n: usize) -> Vec<PageId> {
        self.active_candidates_from(0, n)
    }

    /// Oldest active pages, up to `n`, sweeping shards starting at
    /// `start`.
    pub fn active_candidates_from(&self, start: usize, n: usize) -> Vec<PageId> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            if out.len() >= n {
                break;
            }
            let g = self.locks.lock(
                LockSite::PageQueueShard,
                &self.shards[(start + i) % self.shards.len()],
            );
            out.extend(g.active.iter().take(n - out.len()).map(|&p| PageId(p)));
        }
        out
    }

    /// Wire a page (pin it against pageout).
    pub fn wire(&self, id: PageId) {
        let s = self.qs(id.0);
        let mut g = self.locks.lock(LockSite::PageQueueShard, &self.shards[s]);
        let info = g.pages.get_mut(&id.0).expect("known page");
        info.wire_count += 1;
        if info.queue != PageQueue::Wired {
            let old = info.queue;
            info.queue = PageQueue::Wired;
            match old {
                PageQueue::Active => {
                    g.active.retain(|&p| p != id.0);
                    self.tallies[s].active.fetch_sub(1, Ordering::Relaxed);
                }
                PageQueue::Inactive => {
                    g.inactive.retain(|&p| p != id.0);
                    self.tallies[s].inactive.fetch_sub(1, Ordering::Relaxed);
                }
                PageQueue::Free => panic!("cannot wire a free page"),
                PageQueue::Wired => {}
            }
            self.tallies[s].wired.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Unwire; returns to the active queue when the count reaches zero.
    pub fn unwire(&self, id: PageId) {
        let s = self.qs(id.0);
        let mut g = self.locks.lock(LockSite::PageQueueShard, &self.shards[s]);
        let info = g.pages.get_mut(&id.0).expect("known page");
        assert!(info.wire_count > 0, "unwire of unwired page");
        info.wire_count -= 1;
        if info.wire_count == 0 {
            info.queue = PageQueue::Active;
            g.active.push_back(id.0);
            self.tallies[s].wired.fetch_sub(1, Ordering::Relaxed);
            self.tallies[s].active.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Every page currently belonging to `object_id` (diagnostics/tests).
    pub fn pages_of(&self, object_id: u64) -> Vec<(u64, PageId)> {
        let mut out = Vec::new();
        for shard in &self.hash {
            let g = self.locks.lock(LockSite::PageHashShard, shard);
            out.extend(
                g.iter()
                    .filter(|((oid, _), _)| *oid == object_id)
                    .map(|((_, off), &id)| (*off, PageId(id))),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: u64) -> ResidentTable {
        let t = ResidentTable::new(4096);
        for i in 0..n {
            t.donate(PageId(i));
        }
        t
    }

    #[test]
    fn alloc_sets_identity_and_hash() {
        let t = table_with(4);
        let p = t.alloc(7, 8192, Weak::new()).unwrap();
        assert_eq!(t.lookup(7, 8192), Some(p));
        assert_eq!(t.lookup(7, 0), None);
        assert!(t.with_page(p, |i| i.busy));
        let c = t.counts();
        assert_eq!((c.free, c.active), (3, 1));
        // Stats: 2 lookups, 1 hit.
        assert_eq!(t.lookup_stats(), (2, 1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let t = table_with(1);
        assert!(t.alloc(1, 0, Weak::new()).is_some());
        assert!(t.alloc(1, 4096, Weak::new()).is_none());
    }

    #[test]
    fn free_clears_identity() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.free_page(p);
        assert_eq!(t.lookup(1, 0), None);
        assert_eq!(t.counts().free, 2);
        // The page can be reallocated with a new identity.
        let p2 = t.alloc(2, 4096, Weak::new()).unwrap();
        assert_eq!(t.lookup(2, 4096), Some(p2));
    }

    #[test]
    fn queue_transitions() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.set_queue(p, PageQueue::Inactive);
        let c = t.counts();
        assert_eq!((c.active, c.inactive), (0, 1));
        assert_eq!(t.inactive_candidates(8), vec![p]);
        t.set_queue(p, PageQueue::Active);
        assert_eq!(t.inactive_candidates(8), vec![]);
        assert_eq!(t.active_candidates(8), vec![p]);
    }

    #[test]
    fn wire_protects_from_queues() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.wire(p);
        assert_eq!(t.counts().wired, 1);
        assert!(t.active_candidates(8).is_empty());
        t.wire(p);
        t.unwire(p);
        assert_eq!(t.counts().wired, 1, "still wired once");
        t.unwire(p);
        assert_eq!(t.counts().wired, 0);
        assert_eq!(t.active_candidates(8), vec![p]);
    }

    #[test]
    #[should_panic(expected = "cannot free a wired page")]
    fn freeing_wired_page_panics() {
        let t = table_with(1);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.wire(p);
        t.free_page(p);
    }

    #[test]
    fn rekey_moves_hash_identity() {
        let t = table_with(1);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.rekey(p, 9, 12288, Weak::new());
        assert_eq!(t.lookup(1, 0), None);
        assert_eq!(t.lookup(9, 12288), Some(p));
        assert_eq!(t.pages_of(9), vec![(12288, p)]);
        assert!(t.pages_of(1).is_empty());
    }

    #[test]
    fn pages_of_lists_object_pages() {
        let t = table_with(3);
        let a = t.alloc(5, 0, Weak::new()).unwrap();
        let b = t.alloc(5, 4096, Weak::new()).unwrap();
        t.alloc(6, 0, Weak::new()).unwrap();
        let mut pages = t.pages_of(5);
        pages.sort();
        assert_eq!(pages, vec![(0, a), (4096, b)]);
    }

    #[test]
    fn page_base_address() {
        assert_eq!(PageId(3).base(4096), PAddr(12288));
    }

    #[test]
    #[should_panic(expected = "donated twice")]
    fn double_donation_panics() {
        let t = table_with(1);
        t.donate(PageId(0));
    }

    #[test]
    fn counts_stay_exact_across_many_transitions() {
        // The relaxed per-shard tallies must agree with reality after an
        // arbitrary single-threaded mix of transitions.
        let t = table_with(64);
        let mut pages = Vec::new();
        for i in 0..48u64 {
            pages.push(t.alloc(i % 5, (i / 5) * 4096, Weak::new()).unwrap());
        }
        for (i, &p) in pages.iter().enumerate() {
            match i % 4 {
                0 => t.set_queue(p, PageQueue::Inactive),
                1 => t.wire(p),
                2 => {
                    t.set_queue(p, PageQueue::Inactive);
                    t.set_queue(p, PageQueue::Active);
                }
                _ => {}
            }
        }
        let c = t.counts();
        assert_eq!(c.free + c.active + c.inactive + c.wired, 64);
        assert_eq!(c.free, 16);
        assert_eq!(c.inactive, 12);
        assert_eq!(c.wired, 12);
        assert_eq!(c.active, 24);
        for &p in &pages {
            t.with_page(p, |i| i.wire_count = 0);
            // free_page rejects wired pages; unwire the wired quarter.
        }
        for (i, &p) in pages.iter().enumerate() {
            if i % 4 == 1 {
                t.set_queue(p, PageQueue::Active);
            }
            t.free_page(p);
        }
        let c = t.counts();
        assert_eq!((c.free, c.active, c.inactive, c.wired), (64, 0, 0, 0));
    }

    #[test]
    fn refill_steal_and_spill_conserve_the_pool() {
        // More pages than one refill batch: allocation drains the reserve
        // through the local stack; freeing everything spills back; nothing
        // is lost or duplicated.
        let total = (REFILL_BATCH * 4) as u64;
        let t = table_with(total);
        let mut got = Vec::new();
        for i in 0..total {
            got.push(t.alloc(1, i * 4096, Weak::new()).unwrap());
        }
        assert!(t.alloc(2, 0, Weak::new()).is_none(), "pool exhausted");
        let mut ids: Vec<u64> = got.iter().map(|p| p.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, total, "no frame handed out twice");
        for p in got {
            t.free_page(p);
        }
        assert_eq!(t.counts().free, total);
    }

    #[test]
    fn set_queue_on_a_free_page_is_a_no_op() {
        // Queue moves are requested from candidate lists sampled without
        // a claim, so the page may have been freed in between: the move
        // must not drag a page out of the free pool.
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.free_page(p);
        t.set_queue(p, PageQueue::Active);
        let c = t.counts();
        assert_eq!((c.free, c.active, c.inactive, c.wired), (2, 0, 0, 0));
        assert!(t.active_candidates(8).is_empty());
        // The page is still allocatable.
        assert!(t.alloc(2, 0, Weak::new()).is_some());
    }

    #[test]
    fn teardown_claim_excludes_eviction_and_vice_versa() {
        let t = table_with(2);
        let p = t.alloc(1, 0, Weak::new()).unwrap();
        t.with_page(p, |i| i.busy = false);
        t.set_queue(p, PageQueue::Inactive);
        // Winner takes the frame; the loser must back off.
        assert!(t.claim_evict(p));
        assert!(!t.claim_teardown(p, true), "busy page belongs to evictor");
        t.release_evict(p);
        assert!(t.claim_teardown(p, false));
        assert!(!t.claim_evict(p), "busy page belongs to teardown");
        t.free_page(p);
        assert!(!t.claim_teardown(p, true), "free pages cannot be claimed");
        // Wired pages are only claimable when the caller allows it.
        let w = t.alloc(1, 4096, Weak::new()).unwrap();
        t.with_page(w, |i| i.busy = false);
        t.wire(w);
        assert!(!t.claim_teardown(w, false));
        assert!(t.claim_teardown(w, true));
    }

    #[test]
    fn candidate_sweep_rotates_across_shards() {
        let t = table_with(32);
        let mut pages = Vec::new();
        for i in 0..32u64 {
            let p = t.alloc(3, i * 4096, Weak::new()).unwrap();
            t.set_queue(p, PageQueue::Inactive);
            pages.push(p);
        }
        // Every start point sees the whole population.
        for start in 0..t.shard_count() {
            let mut seen = t.inactive_candidates_from(start, 64);
            seen.sort();
            let mut want = pages.clone();
            want.sort();
            assert_eq!(seen, want);
        }
        // Partial sweeps from different starts begin at different shards.
        let a = t.inactive_candidates_from(0, 4);
        let b = t.inactive_candidates_from(t.shard_count() / 2, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
    }
}
