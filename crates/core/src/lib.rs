//! # mach-vm — machine-independent virtual memory management
//!
//! A faithful Rust reproduction of the VM system of *Machine-Independent
//! Virtual Memory Management for Paged Uniprocessor and Multiprocessor
//! Architectures* (Rashid, Tevanian, Young, Golub, Baron, Black, Bolosky,
//! Chew — CMU, ASPLOS 1987): the memory system that became the ancestor of
//! the BSD/XNU VM.
//!
//! The paper's four data structures map onto four modules:
//!
//! | paper | module |
//! |---|---|
//! | resident page table | [`page`] |
//! | address map (+ sharing maps) | [`map`] |
//! | memory object (+ shadow chains, object cache) | [`object`] |
//! | pmap | the separate **`mach-pmap`** crate |
//!
//! plus the fault handler ([`fault`]), the paging daemon ([`pageout`]),
//! the pagers ([`pager`], [`xpager`] for external user-state pagers), and
//! the user-visible operations of Table 2-1 on [`kernel::Kernel`] and
//! [`task::Task`].
//!
//! **Everything here is machine-independent**: there is no architecture
//! name anywhere in this crate. Hardware is reached only through the
//! `mach-pmap` traits, and all VM information can be reconstructed at
//! fault time, so the pmap layer may discard mappings at will (§3.6).
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use mach_hw::machine::{Machine, MachineModel};
//! use mach_vm::kernel::Kernel;
//!
//! let machine = Machine::boot(MachineModel::micro_vax_ii());
//! let kernel = Kernel::boot(&machine);
//! let task = kernel.create_task();
//!
//! // vm_allocate + touch through the simulated MMU.
//! let addr = task.map().allocate(kernel.ctx(), None, 64 * 1024, true)?;
//! task.user(0, |u| {
//!     u.write_u32(addr, 42).unwrap();
//!     assert_eq!(u.read_u32(addr).unwrap(), 42);
//! });
//!
//! // fork is a copy-on-write copy of the whole space.
//! let child = task.fork();
//! child.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 42));
//! # Ok::<(), mach_vm::types::VmError>(())
//! ```

pub mod ctx;
pub mod fault;
pub mod fleet;
pub mod health;
pub mod inject;
pub mod kernel;
pub mod lockstat;
pub mod map;
pub mod msg;
pub mod netmsg;
pub mod object;
pub mod ops;
pub mod page;
pub mod pageout;
pub mod pager;
pub mod profile;
pub mod stats;
pub mod task;
pub mod trace;
pub mod trace_export;
pub mod types;
pub mod xpager;

pub use ctx::CoreRefs;
pub use fleet::{BurstProbe, FleetOptions, PagerFleet};
pub use health::{GaugeStats, HealthReport, HealthSink, QueueSample};
pub use inject::{InjectKind, InjectPlan, InjectedEvent, Injector};
pub use kernel::{BootOptions, Kernel};
pub use lockstat::{LockSite, LockSiteReport, LockStats};
pub use map::{RegionInfo, VmMap};
pub use msg::RegionTicket;
pub use object::VmObject;
pub use ops::{OpRecord, OpRecorder, VmOp};
pub use page::PageId;
pub use pager::{InodePager, Pager, PagerReply};
pub use profile::{ProfileReport, ProfileRow, Profiler, SpanKind, SpanTotals};
pub use stats::VmStats;
pub use task::{Task, UserCtx};
pub use trace::{
    causal_scope, current_causal, CausalBreakdown, CausalPhase, CausalScope, FaultPair,
    FaultResolution, Histogram, PagerMsg, TraceEvent, TraceLog, TraceRecord, TraceSink,
    TraceTotals, VmRollup,
};
pub use trace_export::chrome_trace_json;
pub use types::{Inheritance, Protection, VmError, VmResult};
pub use xpager::{serve_pager, UserPager};
