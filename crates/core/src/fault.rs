//! The page-fault handler.
//!
//! The central theorem of the paper's design: *all* virtual-memory
//! information can be reconstructed at fault time from machine-independent
//! data structures (§3.6), so the pmap layer may forget anything it likes
//! and the fault handler puts it back. This module resolves a fault
//! address through the address map (and at most one sharing map), walks
//! the shadow chain, zero-fills, calls pagers, pushes copy-on-write pages,
//! and finally re-enters the mapping in the faulting task's pmap.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mach_hw::VAddr;

use crate::ctx::CoreRefs;
use crate::map::VmMap;
use crate::object::{self, VmObject};
use crate::page::{PageId, PageQueue};
use crate::pager::PagerReply;
use crate::profile::SpanKind;
use crate::trace::{FaultResolution, PagerMsg, TraceEvent};
use crate::types::{Protection, VmError, VmResult};

/// A fault that descends this many shadow-chain levels triggers a
/// proactive collapse pass even without a COW push: each level costs
/// `25 × lookup_step` cycles on *every* subsequent fault, so deep chains
/// are worth collecting the moment they are observed (the fork-storm
/// workloads in `docs/WORKLOADS.md` keep the `shadow_depth` health gauge
/// bounded through exactly this trigger).
const COLLAPSE_DEPTH_TRIGGER: u64 = 4;

/// Result of trying to place a busy page in an object.
pub(crate) enum InsertOutcome {
    /// A page already exists at the offset (`busy` tells whether someone
    /// is still filling it).
    Existing(PageId, bool),
    /// A fresh **busy** page was inserted; the caller must fill it and
    /// clear busy.
    Inserted(PageId),
    /// The free list is empty; reclaim and retry.
    NoMemory,
}

/// Insert a busy page for `(obj, offset)` unless one exists.
pub(crate) fn insert_busy(ctx: &CoreRefs, obj: &Arc<VmObject>, offset: u64) -> InsertOutcome {
    let mut s = obj.lock();
    if let Some(&page) = s.resident.get(&offset) {
        let busy = ctx.resident.with_page(page, |p| p.busy);
        return InsertOutcome::Existing(page, busy);
    }
    match ctx.resident.alloc(obj.id(), offset, Arc::downgrade(obj)) {
        Some(page) => {
            s.resident.insert(offset, page);
            InsertOutcome::Inserted(page)
        }
        None => InsertOutcome::NoMemory,
    }
}

/// Fill a page's frame with `data` (or zeros) and un-busy it, waking
/// waiters. Marks the page dirty when the content is "precious" — the
/// only copy of internal-object data.
pub(crate) fn fill_and_release(
    ctx: &CoreRefs,
    obj: &Arc<VmObject>,
    page: PageId,
    data: Option<&[u8]>,
    dirty: bool,
) {
    let pa = page.base(ctx.page_size);
    match data {
        Some(d) => {
            assert!(d.len() as u64 <= ctx.page_size);
            if (d.len() as u64) < ctx.page_size {
                ctx.machdep.zero_page(pa, ctx.page_size);
            }
            ctx.machine
                .phys()
                .write(pa, d)
                .expect("resident frame writable");
            ctx.machine
                .charge(ctx.machine.cost().copy_cycles(d.len() as u64));
        }
        None => ctx.machdep.zero_page(pa, ctx.page_size),
    }
    let _s = obj.lock();
    ctx.resident.with_page(page, |p| {
        p.busy = false;
        p.wanted = false;
        if dirty {
            p.dirty = true;
        }
    });
    obj.busy_wakeup.notify_all();
}

/// Un-busy a page whose frame was filled out of band (e.g. by
/// `pmap_copy_page`), waking waiters.
pub(crate) fn release_busy(ctx: &CoreRefs, obj: &Arc<VmObject>, page: PageId, dirty: bool) {
    let _s = obj.lock();
    ctx.resident.with_page(page, |p| {
        p.busy = false;
        p.wanted = false;
        if dirty {
            p.dirty = true;
        }
    });
    obj.busy_wakeup.notify_all();
}

/// Supply externally-provided data for `(obj, offset)`
/// (`pager_data_provided`, Table 3-2). Fills a waiting busy page, or
/// installs an unsolicited page. Returns whether the supply acted: a
/// duplicate delivery for an already-filled page, or a supply to a
/// quarantined (dead-pager) object, is ignored and returns `false` —
/// the pager protocol is at-least-once, so dedup lives here.
pub fn supply_data(ctx: &CoreRefs, obj: &Arc<VmObject>, offset: u64, data: Option<&[u8]>) -> bool {
    let Some(page) = claim_supply(ctx, obj, offset) else {
        return false;
    };
    fill_and_release(ctx, obj, page, data, false);
    true
}

/// The dedup half of [`supply_data`]: claim the busy placeholder (or an
/// unsolicited slot) for `(obj, offset)` without filling it. Returns
/// `None` when the supply would be ignored. Callers that must order a
/// side effect *before* the waiting faulter wakes — the trace emit of
/// `pager_data_provided`, whose record has to be in the ring before the
/// fault completes or the DataRequest/DataProvided books can be caught
/// one entry short — claim first, act, then [`fill_and_release`].
pub(crate) fn claim_supply(ctx: &CoreRefs, obj: &Arc<VmObject>, offset: u64) -> Option<PageId> {
    let mut s = obj.lock();
    if s.pager_dead {
        return None; // late reply from a pager declared dead
    }
    match s.resident.get(&offset) {
        Some(&p) => {
            if !ctx.resident.with_page(p, |i| i.busy) {
                return None; // already filled: duplicate message
            }
            Some(p)
        }
        None => match ctx.resident.alloc(obj.id(), offset, Arc::downgrade(obj)) {
            Some(p) => {
                s.resident.insert(offset, p);
                Some(p)
            }
            None => None, // no room for unsolicited data
        },
    }
}

/// Drop a busy placeholder page after a failed pager interaction.
fn abort_busy(ctx: &CoreRefs, obj: &Arc<VmObject>, offset: u64, page: PageId) {
    {
        let mut s = obj.lock();
        if s.resident.get(&offset) == Some(&page) {
            s.resident.remove(&offset);
        }
        ctx.resident.with_page(page, |p| {
            p.busy = false;
            p.wanted = false;
        });
        obj.busy_wakeup.notify_all();
    }
    ctx.resident.free_page(page);
}

/// Wait until `page` of `obj` stops being busy.
///
/// # Errors
///
/// [`VmError::PagerDied`] if the pager never answers, or — immediately,
/// without waiting out the timeout — if the object was quarantined
/// because its pager died (the quarantine broadcasts `busy_wakeup`).
fn wait_not_busy(ctx: &CoreRefs, obj: &Arc<VmObject>, page: PageId) -> VmResult<()> {
    let mut s = obj.lock();
    loop {
        if s.pager_dead {
            return Err(VmError::PagerDied);
        }
        let busy = ctx.resident.with_page(page, |p| {
            if p.busy {
                p.wanted = true;
            }
            p.busy
        });
        if !busy {
            return Ok(());
        }
        let _q = ctx.machine.kernel_block();
        if obj
            .busy_wakeup
            .wait_for(&mut s, ctx.pager_timeout)
            .timed_out()
        {
            return Err(VmError::PagerDied);
        }
    }
}

/// Handle a page fault at `va` in `map` for `access` (a single
/// [`Protection`] bit). Returns the page finally mapped.
///
/// `wire` wires the page (kernel use).
///
/// # Errors
///
/// [`VmError::InvalidAddress`] for unallocated addresses,
/// [`VmError::ProtectionFailure`] when `access` exceeds the region's
/// current protection, [`VmError::ResourceShortage`] when memory cannot be
/// reclaimed, plus pager errors.
pub fn vm_fault(
    ctx: &CoreRefs,
    map: &Arc<VmMap>,
    va: u64,
    access: Protection,
    wire: bool,
) -> VmResult<PageId> {
    let va = ctx.trunc_page(va);
    ctx.stats.faults.fetch_add(1, Ordering::Relaxed);
    let task = map.owner();
    let fault_id = ctx.trace.next_fault_id();
    if fault_id != 0 {
        // The object is unknown at entry; the offset field carries the VA.
        ctx.trace_emit(task, 0, va, TraceEvent::FaultBegin { fault_id });
    }
    // Everything this thread does until the fault ends — in particular
    // the pager transports — attributes to this fault's causal id.
    let _causal = crate::trace::causal_scope(fault_id);
    // Opened right after the FaultBegin emit and dropped right after the
    // FaultEnd emit, with no cycles charged in between on either side: the
    // span's total therefore equals the trace pair's latency *exactly*
    // (reconciled in tests/profile_props.rs).
    let _fault_span = ctx.prof_span(SpanKind::Fault);
    match fault_body(ctx, map, va, access, wire, task) {
        Ok((page, object, offset, resolution)) => {
            ctx.trace_emit(
                task,
                object,
                offset,
                TraceEvent::FaultEnd {
                    fault_id,
                    resolution,
                },
            );
            Ok(page)
        }
        Err(e) => {
            ctx.trace_emit(
                task,
                0,
                va,
                TraceEvent::FaultEnd {
                    fault_id,
                    resolution: FaultResolution::Failed,
                },
            );
            Err(e)
        }
    }
}

/// The fault state machine behind [`vm_fault`]. Returns the page finally
/// mapped plus the `(object, offset, resolution)` the trace layer stamps
/// on the `FaultEnd` event. The resolution flags are *sticky* across
/// `'restart` iterations so the reported resolution matches the counters
/// this fault actually bumped (a zero-fill that restarts and then finds
/// its own page resident is still a zero-fill).
fn fault_body(
    ctx: &CoreRefs,
    map: &Arc<VmMap>,
    va: u64,
    access: Protection,
    wire: bool,
    task: u64,
) -> VmResult<(PageId, u64, u64, FaultResolution)> {
    let write = access.contains(Protection::WRITE);
    let page_size = ctx.page_size;
    let mut attempts = 0u32;
    let mut saw_zero = false;
    let mut saw_pagein = false;
    let mut saw_cow = false;
    'restart: loop {
        attempts += 1;
        if attempts > 200 {
            return Err(VmError::ResourceShortage);
        }
        let r = {
            let _sp = ctx.prof_span(SpanKind::MapLookup);
            map.resolve(ctx, va)?
        };
        if !r.prot.contains(access) {
            return Err(VmError::ProtectionFailure);
        }
        // A write into a copy-on-write entry first gets its shadow object
        // (paper §3.4: "a new page accessible only to the writing task").
        // `pager_readonly` objects (Table 3-2) force the same treatment.
        if write && (r.needs_copy || r.object.lock().pager_readonly) {
            r.holder
                .install_shadow_for(ctx, r.holder_addr, r.needs_copy)?;
            continue 'restart;
        }
        let first = Arc::clone(&r.object);
        let first_offset = r.offset;

        // ---- Pager data locks (Table 3-2). ----
        // If the pager revoked this access, send `pager_data_unlock` and
        // wait for the matching `pager_data_lock(..., 0)`.
        {
            let mut s = first.lock();
            let revoked = s.locks.get(&first_offset).copied().unwrap_or(0);
            if revoked & access.bits() != 0 {
                let pager = s.pager.clone();
                if let Some(p) = pager {
                    p.data_unlock(first.id(), first_offset, page_size, access.bits());
                    ctx.trace_emit(
                        task,
                        first.id(),
                        first_offset,
                        TraceEvent::PagerRequest {
                            msg: PagerMsg::DataUnlock,
                            pager: p.port_id(first.id()),
                            causal: crate::trace::current_causal(),
                        },
                    );
                }
                let deadline = std::time::Instant::now() + ctx.pager_timeout;
                loop {
                    if s.pager_dead {
                        return Err(VmError::PagerDied); // quarantined: fail fast
                    }
                    let still = s.locks.get(&first_offset).copied().unwrap_or(0);
                    if still & access.bits() == 0 {
                        break;
                    }
                    let _q = ctx.machine.kernel_block();
                    if first.busy_wakeup.wait_until(&mut s, deadline).timed_out() {
                        return Err(VmError::PagerDied);
                    }
                }
                drop(s);
                continue 'restart;
            }
        }

        // ---- Walk the shadow chain looking for the page (§3.4). ----
        let mut obj = Arc::clone(&first);
        let mut offset = first_offset;
        let mut chain_depth = 0u64;
        // Dropped explicitly after the loop breaks; a `continue 'restart`
        // or an error return inside the loop drops it with the iteration.
        let walk_span = ctx.prof_span(SpanKind::ShadowWalk);
        let (found_obj, found_page, found_offset) = loop {
            let mut s = obj.lock();
            if let Some(&page) = s.resident.get(&offset) {
                let busy = ctx.resident.with_page(page, |p| {
                    if p.busy {
                        p.wanted = true;
                    }
                    p.busy
                });
                if busy {
                    if s.pager_dead {
                        return Err(VmError::PagerDied); // quarantined: fail fast
                    }
                    // Someone is filling it; sleep and restart the fault.
                    let _q = ctx.machine.kernel_block();
                    if obj
                        .busy_wakeup
                        .wait_for(&mut s, ctx.pager_timeout)
                        .timed_out()
                    {
                        return Err(VmError::PagerDied);
                    }
                    drop(s);
                    continue 'restart;
                }
                ctx.stats.resident_hits.fetch_add(1, Ordering::Relaxed);
                break (Arc::clone(&obj), page, offset);
            }
            if let Some(pager) = s.pager.clone() {
                if s.pager_dead {
                    // Quarantined (the pager task died): reject new faults
                    // immediately instead of sending requests into a void.
                    return Err(VmError::PagerDied);
                }
                let page = match ctx.resident.alloc(obj.id(), offset, Arc::downgrade(&obj)) {
                    Some(p) => p,
                    None => {
                        drop(s);
                        crate::pageout::reclaim(ctx, 32);
                        continue 'restart;
                    }
                };
                s.resident.insert(offset, page);
                drop(s);
                ctx.stats.pageins.fetch_add(1, Ordering::Relaxed);
                saw_pagein = true;
                ctx.trace_emit(
                    task,
                    obj.id(),
                    offset,
                    TraceEvent::PagerRequest {
                        msg: PagerMsg::DataRequest,
                        pager: pager.port_id(obj.id()),
                        causal: crate::trace::current_causal(),
                    },
                );
                // Transient backing-store errors get a short bounded retry
                // before the fault is failed — a busy device is not a
                // dead pager.
                let reply = {
                    let _pw = ctx.prof_span(SpanKind::PagerWait);
                    let mut reply = pager.data_request(obj.id(), offset, page_size);
                    let mut attempt = 0u32;
                    while matches!(reply, PagerReply::Error(VmError::DeviceBusy)) && attempt < 3 {
                        attempt += 1;
                        ctx.stats.io_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_micros(50 << attempt));
                        reply = pager.data_request(obj.id(), offset, page_size);
                    }
                    reply
                };
                match reply {
                    PagerReply::Data(d) => {
                        // Internal pagers answer synchronously; the reply
                        // event is synthesised here. External pagers return
                        // Pending and their service thread emits it.
                        ctx.trace_emit(
                            task,
                            obj.id(),
                            offset,
                            TraceEvent::PagerReply {
                                msg: PagerMsg::DataProvided,
                                pager: pager.port_id(obj.id()),
                                causal: crate::trace::current_causal(),
                            },
                        );
                        {
                            let _cp = ctx.prof_span(SpanKind::Copy);
                            fill_and_release(ctx, &obj, page, Some(&d), false);
                        }
                        break (Arc::clone(&obj), page, offset);
                    }
                    PagerReply::Unavailable => {
                        ctx.stats.zero_fill.fetch_add(1, Ordering::Relaxed);
                        saw_zero = true;
                        ctx.trace_emit(
                            task,
                            obj.id(),
                            offset,
                            TraceEvent::PagerReply {
                                msg: PagerMsg::DataUnavailable,
                                pager: pager.port_id(obj.id()),
                                causal: crate::trace::current_causal(),
                            },
                        );
                        {
                            let _zf = ctx.prof_span(SpanKind::ZeroFill);
                            fill_and_release(ctx, &obj, page, None, false);
                        }
                        break (Arc::clone(&obj), page, offset);
                    }
                    PagerReply::Pending => {
                        let waited = {
                            let _pw = ctx.prof_span(SpanKind::PagerWait);
                            wait_not_busy(ctx, &obj, page)
                        };
                        match waited {
                            Ok(()) => break (Arc::clone(&obj), page, offset),
                            Err(e) => {
                                abort_busy(ctx, &obj, offset, page);
                                return Err(e);
                            }
                        }
                    }
                    PagerReply::Error(e) => {
                        abort_busy(ctx, &obj, offset, page);
                        if e == VmError::PagerDied {
                            // The proxy saw a dead port (or injected
                            // death): quarantine so later faults on this
                            // object fail fast, not after a timeout.
                            object::quarantine(&obj, ctx);
                        }
                        return Err(e);
                    }
                }
            }
            if let Some(shadow) = s.shadow.clone() {
                let delta = s.shadow_offset;
                drop(s);
                // Each chain level costs real work at fault time — the
                // cost the §3.5 garbage collection exists to bound.
                ctx.machine.charge(ctx.machine.cost().lookup_step * 25);
                chain_depth += 1;
                offset += delta;
                obj = shadow;
                continue;
            }
            // End of the chain: the data is logically zero. Zero-fill in
            // the *first* object (writes must land there anyway).
            drop(s);
            match insert_busy(ctx, &first, first_offset) {
                InsertOutcome::Existing(page, false) => {
                    break (Arc::clone(&first), page, first_offset)
                }
                InsertOutcome::Existing(_, true) => continue 'restart,
                InsertOutcome::Inserted(page) => {
                    ctx.stats.zero_fill.fetch_add(1, Ordering::Relaxed);
                    saw_zero = true;
                    // Internal pages are precious: the only copy.
                    {
                        let _zf = ctx.prof_span(SpanKind::ZeroFill);
                        fill_and_release(ctx, &first, page, None, true);
                    }
                    break (Arc::clone(&first), page, first_offset);
                }
                InsertOutcome::NoMemory => {
                    crate::pageout::reclaim(ctx, 32);
                    continue 'restart;
                }
            }
        };
        drop(walk_span);
        ctx.health.shadow_depth(chain_depth);

        // ---- Copy-on-write push (§3.4). ----
        let backing_hit = !Arc::ptr_eq(&found_obj, &first);
        let (final_obj, final_page, final_offset) = if backing_hit && write {
            match insert_busy(ctx, &first, first_offset) {
                InsertOutcome::Existing(page, false) => (Arc::clone(&first), page, first_offset),
                InsertOutcome::Existing(_, true) => continue 'restart,
                InsertOutcome::NoMemory => {
                    crate::pageout::reclaim(ctx, 32);
                    continue 'restart;
                }
                InsertOutcome::Inserted(page) => {
                    let _cp = ctx.prof_span(SpanKind::Copy);
                    ctx.machdep.copy_page(
                        found_page.base(page_size),
                        page.base(page_size),
                        page_size,
                    );
                    ctx.stats.cow_faults.fetch_add(1, Ordering::Relaxed);
                    saw_cow = true;
                    release_busy(ctx, &first, page, true);
                    if r.holder.pmap().is_none() {
                        // The entry lives in a *sharing map*: every task
                        // mapping the superseded backing page through it
                        // must refault to see the pushed copy. Their VAs
                        // are unknown here, which is exactly why
                        // pmap_remove_all is physically indexed (§3.4).
                        ctx.machdep
                            .remove_all(found_page.base(page_size), page_size);
                    }
                    (Arc::clone(&first), page, first_offset)
                }
            }
        } else {
            (found_obj, found_page, found_offset)
        };

        // A push may have made an intermediate shadow garbage (§3.5), and
        // a deep descent is itself evidence of collectable chain — the
        // obscured-splice pass keeps fork-diamond chains bounded even
        // when no single write makes a level fully dead.
        if (backing_hit && write) || chain_depth >= COLLAPSE_DEPTH_TRIGGER {
            object::collapse(&first, ctx);
        }

        // ---- Hold the page across mapping establishment. ----
        // Between here and the pmap_enter below, the paging daemon must
        // not evict (and reallocate!) the frame: claim it busy, verifying
        // it still belongs where we found it.
        {
            let s = final_obj.lock();
            if s.resident.get(&ctx.trunc_page(final_offset)) != Some(&final_page) {
                drop(s);
                continue 'restart; // evicted or replaced under us
            }
            let claimed = ctx.resident.with_page(final_page, |p| {
                if p.busy {
                    p.wanted = true;
                    false
                } else {
                    p.busy = true;
                    true
                }
            });
            if !claimed {
                drop(s);
                continue 'restart; // someone else is working on it
            }
        }

        // ---- Enter the mapping. ----
        let mut prot = r.prot;
        if (!Arc::ptr_eq(&final_obj, &first)) || r.needs_copy {
            // Mapping a backing page, or a not-yet-shadowed COW entry:
            // never writable, so the next write faults here again.
            prot = prot.remove(Protection::WRITE);
        }
        {
            // The pager's wishes narrow the hardware mapping too: a
            // `pager_readonly` object (writes must shadow) and any
            // `pager_data_lock`-revoked bits must keep faulting.
            let s = first.lock();
            if s.pager_readonly {
                prot = prot.remove(Protection::WRITE);
            }
            if let Some(&revoked) = s.locks.get(&first_offset) {
                prot = Protection::from_bits(prot.bits() & !revoked);
            }
        }
        if let Some(pmap) = map.pmap() {
            let _pe = ctx.prof_span(SpanKind::PmapEnter);
            pmap.enter(
                VAddr(va),
                final_page.base(page_size),
                page_size,
                prot.to_hw(),
                wire || r.wired,
            );
        }
        if ctx.health.is_enabled() {
            // The pv-list walk is work we only do while sampling.
            ctx.health
                .pv_list_len(ctx.machdep.mapping_count(final_page.base(page_size)) as u64);
        }
        if write {
            ctx.resident.with_page(final_page, |p| p.dirty = true);
        }
        if wire || r.wired {
            ctx.resident.wire(final_page);
        } else {
            ctx.resident.set_queue(final_page, PageQueue::Active);
        }
        release_busy(ctx, &final_obj, final_page, false);
        let resolution = if saw_cow {
            FaultResolution::CowPush
        } else if saw_zero {
            FaultResolution::ZeroFill
        } else if saw_pagein {
            FaultResolution::Pagein
        } else {
            FaultResolution::ResidentHit
        };
        return Ok((
            final_page,
            final_obj.id(),
            ctx.trunc_page(final_offset),
            resolution,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::pageout;
    use mach_hw::machine::{Machine, MachineModel};

    fn boot() -> Arc<Kernel> {
        Kernel::boot(&Machine::boot(MachineModel::micro_vax_ii()))
    }

    #[test]
    fn zero_fill_fault_produces_zero_page() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let addr = task.map().allocate(ctx, None, k.page_size(), true).unwrap();
        let page = vm_fault(ctx, task.map(), addr, Protection::READ, false).unwrap();
        let mut buf = vec![0xFFu8; 64];
        ctx.machine
            .phys()
            .read(page.base(k.page_size()), &mut buf)
            .unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(k.statistics().zero_fill_count, 1);
        assert_eq!(k.statistics().faults, 1);
    }

    #[test]
    fn second_fault_hits_resident_page() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let addr = task.map().allocate(ctx, None, k.page_size(), true).unwrap();
        let p1 = vm_fault(ctx, task.map(), addr, Protection::READ, false).unwrap();
        let p2 = vm_fault(ctx, task.map(), addr + 8, Protection::WRITE, false).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(k.statistics().resident_hits, 1);
        assert_eq!(k.statistics().zero_fill_count, 1);
    }

    #[test]
    fn fault_on_unallocated_address_fails() {
        let k = boot();
        let task = k.create_task();
        assert_eq!(
            vm_fault(k.ctx(), task.map(), 0x5000_0000, Protection::READ, false).unwrap_err(),
            VmError::InvalidAddress
        );
    }

    #[test]
    fn fault_beyond_protection_fails() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let addr = task.map().allocate(ctx, None, k.page_size(), true).unwrap();
        task.map()
            .protect(ctx, addr, k.page_size(), false, Protection::READ)
            .unwrap();
        assert_eq!(
            vm_fault(ctx, task.map(), addr, Protection::WRITE, false).unwrap_err(),
            VmError::ProtectionFailure
        );
        assert!(vm_fault(ctx, task.map(), addr, Protection::READ, false).is_ok());
    }

    #[test]
    fn cow_write_pushes_page_and_preserves_original() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = task.map().allocate(ctx, None, ps, true).unwrap();
        // Fill the original.
        k.vm_write(&task, addr, &vec![7u8; ps as usize]).unwrap();
        // Make it COW (as vm_copy would).
        let _ = task.map().copy_entries(ctx, addr, addr + ps).unwrap();
        // Write fault: shadow is created, page pushed.
        let page = vm_fault(ctx, task.map(), addr, Protection::WRITE, false).unwrap();
        assert_eq!(k.statistics().cow_faults, 1);
        let r = task.map().resolve(ctx, addr).unwrap();
        // The single-page shadow fully obscures its backing object after
        // the push, so the bypass transformation already removed the
        // chain (§3.5 garbage collection at its most aggressive).
        assert_eq!(r.object.chain_length(), 0);
        assert_eq!(k.statistics().bypasses, 1);
        // The pushed page has the original's bytes.
        let mut buf = vec![0u8; 16];
        ctx.machine.phys().read(page.base(ps), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn read_fault_on_cow_maps_readonly_backing_page() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = task.map().allocate(ctx, None, ps, true).unwrap();
        k.vm_write(&task, addr, &[9u8; 8]).unwrap();
        let before = task.map().resolve(ctx, addr).unwrap().object;
        let clones = task.map().copy_entries(ctx, addr, addr + ps).unwrap();
        drop(clones);
        // Read fault: no shadow created, no page copied.
        let page = vm_fault(ctx, task.map(), addr, Protection::READ, false).unwrap();
        assert_eq!(k.statistics().cow_faults, 0);
        let r = task.map().resolve(ctx, addr).unwrap();
        assert!(Arc::ptr_eq(&r.object, &before), "still the original object");
        // But the hardware mapping is read-only even though prot is rw.
        let hw = task.pmap().extract(mach_hw::VAddr(addr));
        assert_eq!(hw, Some(page.base(ps)));
        let _b = ctx.machine.bind_cpu(0);
        task.pmap().activate(0);
        assert!(ctx.machine.store_u32(mach_hw::VAddr(addr), 1).is_err());
    }

    #[test]
    fn fault_retries_after_memory_pressure() {
        // Boot a tiny machine and allocate more than physical memory: the
        // fault path must reclaim via pageout and keep going.
        let mut model = MachineModel::micro_vax_ii();
        model.mem_bytes = 2 << 20; // 2 MB
        let k = Kernel::boot(&Machine::boot(model));
        let task = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let total = 4 << 20; // 4 MB of virtual memory, 2 MB physical
        let addr = task.map().allocate(ctx, None, total, true).unwrap();
        for i in 0..total / ps {
            let page = vm_fault(ctx, task.map(), addr + i * ps, Protection::WRITE, false).unwrap();
            // Write a marker so pageout must save it.
            ctx.machine
                .phys()
                .write(page.base(ps), &(i as u32).to_le_bytes())
                .unwrap();
        }
        let stats = k.statistics();
        assert!(stats.pageouts > 0, "pressure must have paged out");
        // Every page is recoverable with its data.
        for i in (0..total / ps).step_by(7) {
            let page = vm_fault(ctx, task.map(), addr + i * ps, Protection::READ, false).unwrap();
            let mut buf = [0u8; 4];
            ctx.machine.phys().read(page.base(ps), &mut buf).unwrap();
            assert_eq!(u32::from_le_bytes(buf), i as u32, "page {i} data survived");
        }
        assert!(k.statistics().pageins > 0);
    }

    #[test]
    fn supply_data_fills_waiting_page() {
        let k = boot();
        let ctx = k.ctx();
        let ps = k.page_size();
        let obj = crate::object::VmObject::new_internal(ps);
        // Simulate a fault having inserted a busy page.
        let page = match insert_busy(ctx, &obj, 0) {
            InsertOutcome::Inserted(p) => p,
            _ => panic!("fresh object"),
        };
        assert!(ctx.resident.with_page(page, |p| p.busy));
        supply_data(ctx, &obj, 0, Some(&vec![3u8; ps as usize]));
        assert!(!ctx.resident.with_page(page, |p| p.busy));
        let mut b = [0u8; 4];
        ctx.machine.phys().read(page.base(ps), &mut b).unwrap();
        assert_eq!(b, [3, 3, 3, 3]);
        // Unsolicited data for another offset installs a page.
        supply_data(ctx, &obj, ps, None);
        assert_eq!(obj.lock().resident.len(), 2);
    }

    #[test]
    fn wire_pins_page_against_reclaim() {
        let k = boot();
        let task = k.create_task();
        let ctx = k.ctx();
        let ps = k.page_size();
        let addr = task.map().allocate(ctx, None, ps, true).unwrap();
        let page = vm_fault(ctx, task.map(), addr, Protection::WRITE, true).unwrap();
        assert_eq!(ctx.resident.counts().wired, 1);
        // A reclaim pass cannot touch it.
        pageout::reclaim(ctx, 4);
        let r = task.map().resolve(ctx, addr).unwrap();
        assert_eq!(r.object.lock().resident.get(&0), Some(&page));
    }
}
