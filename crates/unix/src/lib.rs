//! # mach-unix — the 4.3bsd-style baseline
//!
//! The comparison system for the paper's Tables 7-1 and 7-2: a
//! traditional UNIX VM and file I/O path running on the *same* simulated
//! hardware and the *same* machine-dependent pmap layer. Its defining
//! costs, which the Mach design removes, are:
//!
//! - **fork copies every resident data/stack page eagerly** (no
//!   copy-on-write) — the `fork 256K` rows;
//! - **`read`/`write` copy through a bounded buffer cache** (disk →
//!   cache, cache → user) instead of mapping file pages — the file-read
//!   rows, where the second read of a big file still pays copies and,
//!   with a small cache, disk I/O;
//! - the buffer cache has a **fixed boot-time size** ("generic
//!   configuration" vs "400 buffers" in Table 7-2) while Mach's object
//!   cache grows into free memory;
//! - a heavier fault path (no hints, segment list scan, validation),
//!   modeled as a fixed overhead per fault.
//!
//! Like the systems the paper describes, this baseline offers "little in
//! the way of virtual memory management other than simple paging
//! support": segments, demand-zero fill, and swap.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use mach_fs::{BufferCache, FileId, SimFs};
use mach_hw::machine::Machine;
use mach_hw::{Access, Fault, HwProt, PAddr, Pfn, VAddr};
use mach_pmap::{MachDep, Pmap};
use parking_lot::Mutex;

/// Extra kernel cycles per UNIX fault (segment scan, validation) on top
/// of the shared trap cost — the constant behind the paper's slower UNIX
/// zero-fill numbers.
pub const UNIX_FAULT_OVERHEAD: u64 = 350;

/// Errors from the baseline kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnixError {
    /// Address not inside any segment.
    SegmentationViolation,
    /// Out of memory and swap.
    OutOfMemory,
    /// File error.
    Io,
}

impl std::fmt::Display for UnixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnixError::SegmentationViolation => "segmentation violation",
            UnixError::OutOfMemory => "out of memory and swap",
            UnixError::Io => "i/o error",
        })
    }
}

impl std::error::Error for UnixError {}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: u64,
    end: u64,
    writable: bool,
}

#[derive(Debug)]
struct ProcInner {
    segments: Vec<Segment>,
    /// Resident pages: virtual page number → hardware frame run base.
    pages: HashMap<u64, Pfn>,
    /// Pages swapped out: virtual page number → swap slot key.
    swapped: HashMap<u64, u64>,
}

/// A UNIX process: one address space, no sharing, no copy-on-write.
#[derive(Debug)]
pub struct UnixProc {
    pid: u64,
    pmap: Arc<dyn Pmap>,
    kernel: Weak<UnixKernel>,
    inner: Mutex<ProcInner>,
}

/// Counters for the baseline.
#[derive(Debug, Default)]
pub struct UnixStats {
    /// Faults taken.
    pub faults: AtomicU64,
    /// Pages zero-filled.
    pub zero_fills: AtomicU64,
    /// Pages copied at fork.
    pub fork_copies: AtomicU64,
    /// Pages swapped out.
    pub swapouts: AtomicU64,
    /// Pages swapped back in.
    pub swapins: AtomicU64,
}

/// The 4.3bsd-style kernel.
#[derive(Debug)]
pub struct UnixKernel {
    machine: Arc<Machine>,
    machdep: Arc<dyn MachDep>,
    page_size: u64,
    cache: Arc<BufferCache>,
    fs: Arc<SimFs>,
    /// Global page pool (frame runs of `page_size`).
    free: Mutex<Vec<Pfn>>,
    /// FIFO of (proc, vpn) for swap victim selection.
    lru: Mutex<VecDeque<(Weak<UnixProc>, u64)>>,
    /// Swap store: slot → page bytes (host memory + disk latency).
    swap: Mutex<HashMap<u64, Vec<u8>>>,
    next_pid: AtomicU64,
    next_swap: AtomicU64,
    /// Event counters.
    pub stats: UnixStats,
}

impl UnixKernel {
    /// Boot the baseline on `machine` with a buffer cache of
    /// `cache_buffers` blocks over `fs` — the Table 7-2 configuration
    /// knob ("400 buffers" vs the small "generic" pool).
    pub fn boot(machine: &Arc<Machine>, fs: &Arc<SimFs>, cache_buffers: usize) -> Arc<UnixKernel> {
        let machdep = mach_pmap::machdep_for(machine);
        let hw = machine.hw_page_size();
        let mult = (4096 / hw).max(1);
        let page_size = hw * mult;
        // Claim most frames, grouped into aligned runs like the Mach boot.
        let mut drained = machine.frames().drain();
        drained.sort_unstable_by_key(|p| p.0);
        let reserve = drained.len() / 8;
        for pfn in drained.split_off(drained.len() - reserve) {
            machine.frames().free(pfn);
        }
        let mut free = Vec::new();
        let mut i = 0;
        while i < drained.len() {
            let pfn = drained[i].0;
            let ok = pfn.is_multiple_of(mult)
                && i + mult as usize <= drained.len()
                && (1..mult as usize).all(|j| drained[i + j].0 == pfn + j as u64);
            if ok {
                free.push(Pfn(pfn));
                i += mult as usize;
            } else {
                machine.frames().free(drained[i]);
                i += 1;
            }
        }
        Arc::new(UnixKernel {
            machine: Arc::clone(machine),
            machdep,
            page_size,
            cache: BufferCache::new(fs.device(), cache_buffers),
            fs: Arc::clone(fs),
            free: Mutex::new(free),
            lru: Mutex::new(VecDeque::new()),
            swap: Mutex::new(HashMap::new()),
            next_pid: AtomicU64::new(1),
            next_swap: AtomicU64::new(1),
            stats: UnixStats::default(),
        })
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// The machine.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The buffer cache (for statistics).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// Free page count.
    pub fn free_pages(&self) -> usize {
        self.free.lock().len()
    }

    /// Create an empty process.
    pub fn create_proc(self: &Arc<UnixKernel>) -> Arc<UnixProc> {
        Arc::new(UnixProc {
            pid: self.next_pid.fetch_add(1, Ordering::Relaxed),
            pmap: self.machdep.create(),
            kernel: Arc::downgrade(self),
            inner: Mutex::new(ProcInner {
                segments: Vec::new(),
                pages: HashMap::new(),
                swapped: HashMap::new(),
            }),
        })
    }

    fn alloc_page(self: &Arc<UnixKernel>) -> Result<Pfn, UnixError> {
        for _ in 0..3 {
            if let Some(p) = self.free.lock().pop() {
                return Ok(p);
            }
            self.swap_out_some(16)?;
        }
        Err(UnixError::OutOfMemory)
    }

    /// Swap out up to `want` FIFO-victim pages.
    fn swap_out_some(self: &Arc<UnixKernel>, want: usize) -> Result<usize, UnixError> {
        let mut done = 0;
        while done < want {
            let victim = self.lru.lock().pop_front();
            let Some((proc_w, vpn)) = victim else { break };
            let Some(proc) = proc_w.upgrade() else {
                continue;
            };
            let mut inner = proc.inner.lock();
            let Some(frame) = inner.pages.remove(&vpn) else {
                continue;
            };
            let pa = PAddr(frame.0 * self.machine.hw_page_size());
            // Pull the mapping, then write to swap (always dirty: the
            // baseline does not track modify bits).
            self.machdep.remove_all(pa, self.page_size);
            self.machdep.clear_modify(pa, self.page_size);
            self.machdep.clear_reference(pa, self.page_size);
            let mut buf = vec![0u8; self.page_size as usize];
            self.machine.phys().read(pa, &mut buf).expect("resident");
            let slot = self.next_swap.fetch_add(1, Ordering::Relaxed);
            let disk = self.machine.disk();
            self.machine
                .charge_wait_us(disk.io_us(self.page_size.div_ceil(disk.block_size)));
            self.swap.lock().insert(slot, buf);
            inner.swapped.insert(vpn, slot);
            drop(inner);
            self.free.lock().push(frame);
            self.stats.swapouts.fetch_add(1, Ordering::Relaxed);
            done += 1;
        }
        Ok(done)
    }

    /// UNIX `read(2)`: copy `len` bytes of `file` at `offset` into the
    /// process at `uaddr`, **through the buffer cache** — the double-copy
    /// path of the paper's file-reading rows.
    ///
    /// # Errors
    ///
    /// Segment or I/O errors.
    pub fn read(
        self: &Arc<UnixKernel>,
        proc: &Arc<UnixProc>,
        file: FileId,
        offset: u64,
        uaddr: u64,
        len: u64,
    ) -> Result<u64, UnixError> {
        let bs = self.cache.device().block_size();
        let size = self.fs.size(file).map_err(|_| UnixError::Io)?;
        if offset >= size {
            return Ok(0);
        }
        let want = len.min(size - offset);
        let cost = self.machine.cost();
        self.machine.charge(cost.kernel_entry); // the system call
        let mut done = 0u64;
        while done < want {
            let pos = offset + done;
            let within = pos % bs;
            let take = (bs - within).min(want - done);
            let dev_block = self.fs.block_at(file, pos).map_err(|_| UnixError::Io)?;
            let data: Vec<u8> = match dev_block {
                Some(b) => {
                    let cached = self.cache.read(b); // disk or cache copy
                    cached[within as usize..(within + take) as usize].to_vec()
                }
                None => vec![0u8; take as usize],
            };
            // copyout: second copy, into the user's page (faulting it in).
            proc.copyout(self, uaddr + done, &data)?;
            self.machine.charge(cost.copy_cycles(take));
            done += take;
        }
        Ok(want)
    }

    /// UNIX `write(2)`: copy from the process through the buffer cache to
    /// the file.
    ///
    /// # Errors
    ///
    /// Segment or I/O errors.
    pub fn write(
        self: &Arc<UnixKernel>,
        proc: &Arc<UnixProc>,
        file: FileId,
        offset: u64,
        uaddr: u64,
        len: u64,
    ) -> Result<(), UnixError> {
        let cost = self.machine.cost();
        self.machine.charge(cost.kernel_entry);
        let data = proc.copyin(self, uaddr, len)?;
        self.machine.charge(cost.copy_cycles(len));
        self.fs
            .write_at(file, offset, &data)
            .map_err(|_| UnixError::Io)?;
        // Invalidate only the blocks just written (uncached write path).
        let bs = self.cache.device().block_size();
        let mut pos = offset - offset % bs;
        while pos < offset + len {
            if let Ok(Some(b)) = self.fs.block_at(file, pos) {
                self.cache.invalidate_block(b);
            }
            pos += bs;
        }
        Ok(())
    }
}

impl UnixProc {
    /// The process id.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    fn kernel(&self) -> Arc<UnixKernel> {
        self.kernel.upgrade().expect("kernel outlives procs")
    }

    /// Add a demand-zero segment at `[start, start+size)`.
    pub fn add_segment(&self, start: u64, size: u64, writable: bool) {
        self.inner.lock().segments.push(Segment {
            start,
            end: start + size,
            writable,
        });
    }

    /// Total resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Handle a fault at `fault.va`: demand-zero or swap-in.
    ///
    /// # Errors
    ///
    /// [`UnixError::SegmentationViolation`] outside every segment.
    pub fn handle_fault(self: &Arc<UnixProc>, fault: Fault) -> Result<(), UnixError> {
        let k = self.kernel();
        let cost = k.machine.cost();
        k.machine.charge(cost.kernel_entry + UNIX_FAULT_OVERHEAD);
        k.stats.faults.fetch_add(1, Ordering::Relaxed);
        let page = k.page_size;
        let va = fault.va.0 & !(page - 1);
        let vpn = va / page;
        let writable = {
            let inner = self.inner.lock();
            let seg = inner
                .segments
                .iter()
                .find(|s| s.start <= va && va < s.end)
                .copied()
                .ok_or(UnixError::SegmentationViolation)?;
            if fault.access == Access::Write && !seg.writable {
                return Err(UnixError::SegmentationViolation);
            }
            seg.writable
        };
        // Get a frame (outside our own lock: swap-out may need others).
        let existing = self.inner.lock().pages.get(&vpn).copied();
        let frame = match existing {
            Some(f) => f,
            None => {
                let f = k.alloc_page()?;
                let pa = PAddr(f.0 * k.machine.hw_page_size());
                let swap_slot = self.inner.lock().swapped.remove(&vpn);
                match swap_slot {
                    Some(slot) => {
                        let buf = k.swap.lock().remove(&slot).expect("slot live");
                        let disk = k.machine.disk();
                        k.machine
                            .charge_wait_us(disk.io_us(page.div_ceil(disk.block_size)));
                        k.machine.phys().write(pa, &buf).expect("frame");
                        k.machine.charge(cost.copy_cycles(page));
                        k.stats.swapins.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        k.machdep.zero_page(pa, page);
                        k.stats.zero_fills.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.inner.lock().pages.insert(vpn, f);
                k.lru.lock().push_back((Arc::downgrade(self), vpn));
                f
            }
        };
        let pa = PAddr(frame.0 * k.machine.hw_page_size());
        let prot = if writable {
            HwProt::READ | HwProt::WRITE | HwProt::EXECUTE
        } else {
            HwProt::READ | HwProt::EXECUTE
        };
        self.pmap.enter(VAddr(va), pa, page, prot, false);
        Ok(())
    }

    /// Fork: the child receives an **eager copy** of every resident page
    /// — the cost Mach's COW fork avoids.
    ///
    /// # Errors
    ///
    /// [`UnixError::OutOfMemory`] when pages cannot be copied.
    pub fn fork(self: &Arc<UnixProc>) -> Result<Arc<UnixProc>, UnixError> {
        let k = self.kernel();
        let child = k.create_proc();
        let page = k.page_size;
        let (segments, pages): (Vec<Segment>, Vec<(u64, Pfn)>) = {
            let inner = self.inner.lock();
            (
                inner.segments.clone(),
                inner.pages.iter().map(|(&v, &f)| (v, f)).collect(),
            )
        };
        child.inner.lock().segments = segments;
        for (vpn, src) in pages {
            let dst = k.alloc_page()?;
            let hw = k.machine.hw_page_size();
            k.machdep
                .copy_page(PAddr(src.0 * hw), PAddr(dst.0 * hw), page);
            child.inner.lock().pages.insert(vpn, dst);
            k.lru.lock().push_back((Arc::downgrade(&child), vpn));
            k.stats.fork_copies.fetch_add(1, Ordering::Relaxed);
        }
        // Also copy swapped pages (they are part of the image).
        let swapped: Vec<(u64, u64)> = {
            let inner = self.inner.lock();
            inner.swapped.iter().map(|(&v, &s)| (v, s)).collect()
        };
        for (vpn, slot) in swapped {
            let data = k.swap.lock().get(&slot).cloned().expect("slot live");
            let new_slot = k.next_swap.fetch_add(1, Ordering::Relaxed);
            let disk = k.machine.disk();
            k.machine
                .charge_wait_us(2 * disk.io_us(page.div_ceil(disk.block_size)));
            k.swap.lock().insert(new_slot, data);
            child.inner.lock().swapped.insert(vpn, new_slot);
            k.stats.fork_copies.fetch_add(1, Ordering::Relaxed);
        }
        Ok(child)
    }

    /// Kernel copy into user space, faulting pages in as needed.
    fn copyout(
        self: &Arc<UnixProc>,
        k: &Arc<UnixKernel>,
        uaddr: u64,
        data: &[u8],
    ) -> Result<(), UnixError> {
        let page = k.page_size;
        let mut done = 0u64;
        while done < data.len() as u64 {
            let va = uaddr + done;
            let base = va & !(page - 1);
            let within = va - base;
            let take = (page - within).min(data.len() as u64 - done);
            let vpn = base / page;
            if !self.inner.lock().pages.contains_key(&vpn) {
                self.handle_fault(Fault {
                    va: VAddr(base),
                    access: Access::Write,
                    code: mach_hw::FaultCode::Invalid,
                })?;
            }
            let frame = *self.inner.lock().pages.get(&vpn).expect("just faulted");
            let pa = PAddr(frame.0 * k.machine.hw_page_size() + within);
            k.machine
                .phys()
                .write(pa, &data[done as usize..(done + take) as usize])
                .expect("resident");
            done += take;
        }
        Ok(())
    }

    /// Kernel copy out of user space.
    fn copyin(
        self: &Arc<UnixProc>,
        k: &Arc<UnixKernel>,
        uaddr: u64,
        len: u64,
    ) -> Result<Vec<u8>, UnixError> {
        let page = k.page_size;
        let mut out = vec![0u8; len as usize];
        let mut done = 0u64;
        while done < len {
            let va = uaddr + done;
            let base = va & !(page - 1);
            let within = va - base;
            let take = (page - within).min(len - done);
            let vpn = base / page;
            if !self.inner.lock().pages.contains_key(&vpn) {
                self.handle_fault(Fault {
                    va: VAddr(base),
                    access: Access::Read,
                    code: mach_hw::FaultCode::Invalid,
                })?;
            }
            let frame = *self.inner.lock().pages.get(&vpn).expect("just faulted");
            let pa = PAddr(frame.0 * k.machine.hw_page_size() + within);
            k.machine
                .phys()
                .read(pa, &mut out[done as usize..(done + take) as usize])
                .expect("resident");
            done += take;
        }
        Ok(out)
    }

    /// Run `body` as user code of this process on `cpu` (symmetrical to
    /// the Mach task API).
    pub fn user<R>(self: &Arc<UnixProc>, cpu: usize, body: impl FnOnce(&UnixUserCtx) -> R) -> R {
        let k = self.kernel();
        let _bind = k.machine.bind_cpu(cpu);
        self.pmap.activate(cpu);
        let uc = UnixUserCtx {
            proc: Arc::clone(self),
        };
        let r = body(&uc);
        self.pmap.deactivate(cpu);
        r
    }
}

impl Drop for UnixProc {
    fn drop(&mut self) {
        let Some(k) = self.kernel.upgrade() else {
            return;
        };
        let inner = self.inner.lock();
        for (&_vpn, &frame) in &inner.pages {
            let pa = PAddr(frame.0 * k.machine.hw_page_size());
            k.machdep.remove_all(pa, k.page_size);
            k.machdep.clear_modify(pa, k.page_size);
            k.machdep.clear_reference(pa, k.page_size);
            k.free.lock().push(frame);
        }
        let mut swap = k.swap.lock();
        for &slot in inner.swapped.values() {
            swap.remove(&slot);
        }
    }
}

/// User-mode accessors for a process (see [`UnixProc::user`]).
#[derive(Debug)]
pub struct UnixUserCtx {
    proc: Arc<UnixProc>,
}

impl UnixUserCtx {
    fn retry<R>(&self, mut op: impl FnMut() -> Result<R, Fault>) -> Result<R, UnixError> {
        for _ in 0..64 {
            match op() {
                Ok(r) => return Ok(r),
                Err(f) => self.proc.handle_fault(f)?,
            }
        }
        Err(UnixError::OutOfMemory)
    }

    /// Load a `u32`.
    ///
    /// # Errors
    ///
    /// [`UnixError::SegmentationViolation`] outside the segments.
    pub fn read_u32(&self, va: u64) -> Result<u32, UnixError> {
        let m = self.proc.kernel().machine.clone();
        self.retry(|| m.load_u32(VAddr(va)))
    }

    /// Store a `u32`.
    ///
    /// # Errors
    ///
    /// As for [`UnixUserCtx::read_u32`].
    pub fn write_u32(&self, va: u64, v: u32) -> Result<(), UnixError> {
        let m = self.proc.kernel().machine.clone();
        self.retry(|| m.store_u32(VAddr(va), v))
    }

    /// Dirty every page of the range.
    ///
    /// # Errors
    ///
    /// As for [`UnixUserCtx::read_u32`].
    pub fn dirty_range(&self, va: u64, len: u64) -> Result<(), UnixError> {
        let page = self.proc.kernel().page_size;
        let mut a = va;
        while a < va + len {
            self.write_u32(a, 0xA5A5_A5A5)?;
            a += page;
        }
        Ok(())
    }

    /// Touch every page of the range for read.
    ///
    /// # Errors
    ///
    /// As for [`UnixUserCtx::read_u32`].
    pub fn touch_range(&self, va: u64, len: u64) -> Result<(), UnixError> {
        let page = self.proc.kernel().page_size;
        let mut a = va;
        while a < va + len {
            self.read_u32(a)?;
            a += page;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mach_fs::BlockDevice;
    use mach_hw::machine::MachineModel;

    fn boot() -> (Arc<UnixKernel>, Arc<SimFs>) {
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let dev = BlockDevice::new(&machine, 1024);
        let fs = SimFs::format(&dev);
        let k = UnixKernel::boot(&machine, &fs, 64);
        (k, fs)
    }

    #[test]
    fn demand_zero_segments() {
        let (k, _) = boot();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0x10000, 4 * ps, true);
        p.user(0, |u| {
            u.write_u32(0x10000, 7).unwrap();
            assert_eq!(u.read_u32(0x10000).unwrap(), 7);
            assert_eq!(u.read_u32(0x10000 + ps).unwrap(), 0, "demand zero");
            // Outside the segment: segv.
            assert_eq!(
                u.read_u32(0x80000).unwrap_err(),
                UnixError::SegmentationViolation
            );
        });
        assert_eq!(p.resident(), 2);
        assert!(k.stats.zero_fills.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn fork_copies_pages_eagerly_and_isolates() {
        let (k, _) = boot();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0, 64 * ps, true);
        p.user(0, |u| u.dirty_range(0, 64 * ps).unwrap());
        let copies_before = k.stats.fork_copies.load(Ordering::Relaxed);
        let child = p.fork().unwrap();
        // Eager: every resident page copied at fork time.
        assert_eq!(
            k.stats.fork_copies.load(Ordering::Relaxed),
            copies_before + 64
        );
        assert_eq!(child.resident(), 64);
        child.user(0, |u| {
            assert_eq!(u.read_u32(0).unwrap(), 0xA5A5_A5A5);
            u.write_u32(0, 1).unwrap();
        });
        p.user(0, |u| assert_eq!(u.read_u32(0).unwrap(), 0xA5A5_A5A5));
    }

    #[test]
    fn read_goes_through_buffer_cache() {
        let (k, fs) = boot();
        let f = fs.create("data").unwrap();
        fs.write_at(f, 0, &vec![0x77u8; 64 * 1024]).unwrap();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0, 32 * ps, true);
        let _b = k.machine().bind_cpu(0);

        let misses0 = k.cache().stats().misses;
        k.read(&p, f, 0, 0, 64 * 1024).unwrap();
        let misses1 = k.cache().stats().misses;
        assert!(misses1 > misses0, "first read hits the disk");
        p.user(0, |u| assert_eq!(u.read_u32(0).unwrap(), 0x7777_7777));

        // Second read: cache hits (fits in 64 buffers), but still copies.
        let wait0 = k.machine().clock().wait_us();
        let sys0 = k.machine().clock().system_cycles();
        k.read(&p, f, 0, 0, 64 * 1024).unwrap();
        assert_eq!(k.machine().clock().wait_us(), wait0, "no disk this time");
        assert!(
            k.machine().clock().system_cycles() > sys0,
            "copies still cost CPU"
        );
    }

    #[test]
    fn small_cache_thrashes() {
        let machine = Machine::boot(MachineModel::micro_vax_ii());
        let dev = BlockDevice::new(&machine, 1024);
        let fs = SimFs::format(&dev);
        let k = UnixKernel::boot(&machine, &fs, 4); // tiny "generic" pool
        let f = fs.create("big").unwrap();
        fs.write_at(f, 0, &vec![1u8; 256 * 1024]).unwrap();
        let p = k.create_proc();
        p.add_segment(0, 256 * 1024, true);
        let _b = machine.bind_cpu(0);
        k.read(&p, f, 0, 0, 256 * 1024).unwrap();
        let misses_first = k.cache().stats().misses;
        k.read(&p, f, 0, 0, 256 * 1024).unwrap();
        let misses_second = k.cache().stats().misses - misses_first;
        assert!(
            misses_second * 2 > misses_first,
            "a 4-buffer cache rereads most of a 256 KB file from disk"
        );
    }

    #[test]
    fn write_reaches_the_file() {
        let (k, fs) = boot();
        let f = fs.create("out").unwrap();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0, 4 * ps, true);
        p.user(0, |u| u.write_u32(0x100, 0xABCD_EF01).unwrap());
        let _b = k.machine().bind_cpu(0);
        k.write(&p, f, 0, 0, 512).unwrap();
        let mut buf = [0u8; 4];
        fs.read_at(f, 0x100, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), 0xABCD_EF01);
    }

    #[test]
    fn swap_under_pressure_round_trips() {
        let mut model = MachineModel::micro_vax_ii();
        model.mem_bytes = 2 << 20;
        let machine = Machine::boot(model);
        let dev = BlockDevice::new(&machine, 256);
        let fs = SimFs::format(&dev);
        let k = UnixKernel::boot(&machine, &fs, 16);
        let p = k.create_proc();
        let ps = k.page_size();
        let total = 4u64 << 20; // twice physical memory
        p.add_segment(0, total, true);
        p.user(0, |u| {
            let mut a = 0;
            while a < total {
                u.write_u32(a, (a / ps) as u32).unwrap();
                a += ps;
            }
        });
        assert!(k.stats.swapouts.load(Ordering::Relaxed) > 0);
        p.user(0, |u| {
            for i in (0..total / ps).step_by(13) {
                assert_eq!(u.read_u32(i * ps).unwrap(), i as u32);
            }
        });
        assert!(k.stats.swapins.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn proc_exit_returns_pages() {
        let (k, _) = boot();
        let free0 = k.free_pages();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0, 8 * ps, true);
        p.user(0, |u| u.dirty_range(0, 8 * ps).unwrap());
        assert_eq!(k.free_pages(), free0 - 8);
        drop(p);
        assert_eq!(k.free_pages(), free0);
    }
}
