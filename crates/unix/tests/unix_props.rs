//! Property tests for the 4.3bsd baseline: process memory is a byte
//! store, fork is a true deep copy, and the read/write path round-trips
//! through the buffer cache for any cache size.

use std::sync::Arc;

use mach_fs::{BlockDevice, SimFs};
use mach_hw::machine::{Machine, MachineModel};
use mach_unix::UnixKernel;
use proptest::prelude::*;

fn boot(buffers: usize) -> (Arc<UnixKernel>, Arc<SimFs>) {
    let machine = Machine::boot(MachineModel::micro_vax_ii());
    let dev = BlockDevice::new(&machine, 2048);
    let fs = SimFs::format(&dev);
    (UnixKernel::boot(&machine, &fs, buffers), fs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writes at random pages read back; fork isolates both directions.
    #[test]
    fn fork_is_a_deep_copy(
        writes in proptest::collection::vec((0u64..32, any::<u32>()), 1..24),
        child_writes in proptest::collection::vec((0u64..32, any::<u32>()), 1..12),
    ) {
        let (k, _) = boot(32);
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0, 32 * ps, true);
        let mut model = std::collections::HashMap::new();
        p.user(0, |u| {
            for (page, v) in &writes {
                u.write_u32(page * ps, *v).unwrap();
                model.insert(*page, *v);
            }
        });
        let child = p.fork().unwrap();
        let mut child_model = model.clone();
        child.user(0, |u| {
            for (page, v) in &child_writes {
                u.write_u32(page * ps, *v).unwrap();
                child_model.insert(*page, *v);
            }
        });
        p.user(0, |u| {
            for page in 0..32u64 {
                let expect = model.get(&page).copied().unwrap_or(0);
                assert_eq!(u.read_u32(page * ps).unwrap(), expect, "parent page {page}");
            }
        });
        child.user(0, |u| {
            for page in 0..32u64 {
                let expect = child_model.get(&page).copied().unwrap_or(0);
                assert_eq!(u.read_u32(page * ps).unwrap(), expect, "child page {page}");
            }
        });
    }

    /// read(2) returns exactly the file bytes for any buffer-cache size.
    #[test]
    fn read_exact_for_any_cache_size(
        buffers in 1usize..64,
        content in proptest::collection::vec(any::<u8>(), 1..40_000),
        offset in 0u64..5000,
    ) {
        let (k, fs) = boot(buffers);
        let f = fs.create("data").unwrap();
        fs.write_at(f, 0, &content).unwrap();
        let p = k.create_proc();
        let ps = k.page_size();
        p.add_segment(0x10_0000, 64 * ps, true);
        let _b = k.machine().bind_cpu(0);
        let want = (content.len() as u64).saturating_sub(offset);
        let got = k.read(&p, f, offset, 0x10_0000, 60_000).unwrap();
        prop_assert_eq!(got, want);
        if want > 0 {
            // Spot-check bytes through the process.
            p.user(0, |u| {
                for probe in [0, want / 2, want - 1] {
                    let b = u.read_u32(0x10_0000 + (probe & !3)).unwrap();
                    let idx = (offset + (probe & !3)) as usize;
                    let mut expect = [0u8; 4];
                    for (j, e) in expect.iter_mut().enumerate() {
                        *e = content.get(idx + j).copied().unwrap_or(0);
                    }
                    // Bytes past EOF within the last word are zero.
                    assert_eq!(b.to_le_bytes()[0], expect[0]);
                }
            });
        }
    }
}
