//! Property tests of the hardware substrate: physical memory is a
//! consistent byte store under arbitrary chunk-straddling operations, and
//! the TLB is a *transparent* cache — memory accesses through a warm TLB
//! behave identically to accesses through cold table walks.

use std::collections::HashMap;

use mach_hw::addr::{HwProt, PAddr, VAddr};
use mach_hw::arch::vax::{pte, REGION_PAGES};
use mach_hw::arch::CpuRegs;
use mach_hw::machine::{Machine, MachineModel};
use mach_hw::phys::PhysMem;
use mach_hw::tlb::FlushScope;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random writes at random addresses (many straddling the 64 KiB lock
    /// stripes) read back exactly, against a flat reference model.
    #[test]
    fn phys_mem_is_a_byte_store(
        ops in proptest::collection::vec(
            (0u64..(1 << 18) - 64, proptest::collection::vec(any::<u8>(), 1..64)),
            1..40
        )
    ) {
        let mem = PhysMem::new(1 << 18, Vec::new());
        let mut model = vec![0u8; 1 << 18];
        for (addr, data) in &ops {
            mem.write(PAddr(*addr), data).unwrap();
            model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        // Readback at every op's location plus spot checks.
        for (addr, data) in &ops {
            let mut buf = vec![0u8; data.len()];
            mem.read(PAddr(*addr), &mut buf).unwrap();
            prop_assert_eq!(&buf, &model[*addr as usize..*addr as usize + data.len()]);
        }
        let mut all = vec![0u8; 1 << 18];
        mem.read(PAddr(0), &mut all).unwrap();
        prop_assert_eq!(all, model);
    }

    /// Holes reject every access overlapping them, and never corrupt
    /// neighbours.
    #[test]
    fn holes_are_inviolable(
        hole_start in 1u64..200,
        hole_len in 1u64..100,
        probe in 0u64..400,
        len in 1u64..32,
    ) {
        let hole = (hole_start * 512)..((hole_start + hole_len) * 512);
        let mem = PhysMem::new(512 * 512, vec![hole.clone()]);
        let overlaps = probe * 4 < hole.end && probe * 4 + len > hole.start;
        let r = mem.write(PAddr(probe * 4), &vec![7u8; len as usize]);
        prop_assert_eq!(r.is_err(), overlaps || probe * 4 + len > 512 * 512);
    }

    /// TLB transparency: a random sequence of loads/stores on a VAX gives
    /// byte-identical results whether or not the TLB is flushed before
    /// every access.
    #[test]
    fn tlb_is_transparent(
        accesses in proptest::collection::vec(
            (0u64..16, any::<bool>(), any::<u32>(), any::<bool>()),
            1..60
        )
    ) {
        let run = |flush_every_time: bool| -> Vec<Result<u32, ()>> {
            let machine = Machine::boot(MachineModel::micro_vax_ii());
            // Hand-build a tiny P0 page table mapping 16 pages.
            let table = machine.frames().alloc().unwrap().base(512);
            let mut frames = HashMap::new();
            for vpn in 0..16u64 {
                let f = machine.frames().alloc().unwrap();
                frames.insert(vpn, f);
                let prot = if vpn % 3 == 0 {
                    HwProt::READ
                } else {
                    HwProt::READ | HwProt::WRITE
                };
                machine
                    .phys()
                    .write_u32(PAddr(table.0 + 4 * vpn), pte(f, prot))
                    .unwrap();
            }
            let regs = mach_hw::arch::vax::VaxRegs {
                p0br: table.0,
                p0lr: 16,
                p1br: 0,
                p1lr: REGION_PAGES as u32,
                sbr: 0,
                slr: 0,
            };
            machine.cpu(0).load_regs(CpuRegs::Vax(regs));
            let _b = machine.bind_cpu(0);
            let mut out = Vec::new();
            for (vpn, is_write, val, _) in &accesses {
                if flush_every_time {
                    machine.flush_local(FlushScope::All);
                }
                let va = VAddr(vpn * 512);
                if *is_write {
                    out.push(machine.store_u32(va, *val).map(|_| 0).map_err(|_| ()));
                } else {
                    out.push(machine.load_u32(va).map_err(|_| ()));
                }
            }
            out
        };
        prop_assert_eq!(run(false), run(true), "TLB changed visible behaviour");
    }

    /// The frame allocator never double-allocates and conserves frames.
    #[test]
    fn frame_allocator_conserves(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mem = PhysMem::new(1 << 20, Vec::new());
        let fa = mach_hw::phys::FrameAlloc::new(&mem, 4096, 0);
        let total = fa.free_count();
        let mut held = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for take in ops {
            if take {
                if let Some(f) = fa.alloc() {
                    prop_assert!(seen.insert(f), "double allocation of {f}");
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                fa.free(f);
                seen.remove(&f);
            }
        }
        prop_assert_eq!(fa.free_count() + held.len(), total);
    }
}

/// Deterministic regression: a TLB entry made stale by a direct PTE edit
/// self-heals through the denied-then-rewalk path without a spurious
/// machine-independent fault.
#[test]
fn stale_tlb_self_heals_on_protection_widening() {
    let machine = Machine::boot(MachineModel::micro_vax_ii());
    let table = machine.frames().alloc().unwrap().base(512);
    let frame = machine.frames().alloc().unwrap();
    machine
        .phys()
        .write_u32(PAddr(table.0), pte(frame, HwProt::READ))
        .unwrap();
    let regs = mach_hw::arch::vax::VaxRegs {
        p0br: table.0,
        p0lr: 1,
        p1br: 0,
        p1lr: REGION_PAGES as u32,
        sbr: 0,
        slr: 0,
    };
    machine.cpu(0).load_regs(CpuRegs::Vax(regs));
    let _b = machine.bind_cpu(0);
    // Warm the TLB read-only.
    machine.load_u32(VAddr(0)).unwrap();
    assert!(machine.store_u32(VAddr(0), 1).is_err());
    // Widen the PTE directly (as a lazy pmap would, with no flush).
    machine
        .phys()
        .write_u32(PAddr(table.0), pte(frame, HwProt::READ | HwProt::WRITE))
        .unwrap();
    // The stale entry denies, the hardware re-walks, the store succeeds —
    // the "temporary inconsistency" of §5.2 healing itself.
    machine.store_u32(VAddr(0), 0xAB).unwrap();
    assert_eq!(machine.load_u32(VAddr(0)).unwrap(), 0xAB);
}
