//! Simulated physical memory and the boot-time frame allocator.
//!
//! Physical memory is a byte array with optional *holes* — the SUN 3 places
//! display memory at high physical addresses, leaving unpopulated ranges
//! that the resident page table must cope with (paper §5.1). Accessing a
//! hole or an out-of-range address is a bus error.
//!
//! Storage is striped across chunk locks so that several simulated CPUs can
//! access disjoint pages concurrently, as on a real shared-memory bus.

use std::ops::Range;

use parking_lot::RwLock;

use crate::addr::{PAddr, Pfn};

const CHUNK_SHIFT: u32 = 16; // 64 KiB per lock stripe
const CHUNK_SIZE: u64 = 1 << CHUNK_SHIFT;

/// An invalid physical access (out of range or into a hole).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusError {
    /// The offending physical address.
    pub pa: PAddr,
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bus error at {}", self.pa)
    }
}

impl std::error::Error for BusError {}

/// Byte-addressable simulated physical memory.
///
/// # Examples
///
/// ```
/// use mach_hw::phys::PhysMem;
/// use mach_hw::addr::PAddr;
/// let mem = PhysMem::new(1 << 20, Vec::new());
/// mem.write_u32(PAddr(0x100), 0xDEAD_BEEF)?;
/// assert_eq!(mem.read_u32(PAddr(0x100))?, 0xDEAD_BEEF);
/// # Ok::<(), mach_hw::phys::BusError>(())
/// ```
#[derive(Debug)]
pub struct PhysMem {
    size: u64,
    holes: Vec<Range<u64>>,
    chunks: Vec<RwLock<Box<[u8]>>>,
}

impl PhysMem {
    /// Create `size` bytes of physical memory with the given holes.
    ///
    /// Holes still occupy address space (like the SUN 3 display adapter)
    /// but cannot be read or written through this interface.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or any hole lies outside `0..size`.
    pub fn new(size: u64, holes: Vec<Range<u64>>) -> PhysMem {
        assert!(size > 0, "physical memory must be non-empty");
        for h in &holes {
            assert!(h.start < h.end && h.end <= size, "hole out of range");
        }
        let n_chunks = size.div_ceil(CHUNK_SIZE) as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let len = (size - i as u64 * CHUNK_SIZE).min(CHUNK_SIZE) as usize;
            chunks.push(RwLock::new(vec![0u8; len].into_boxed_slice()));
        }
        PhysMem {
            size,
            holes,
            chunks,
        }
    }

    /// Total address-space size in bytes (including holes).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The configured holes.
    pub fn holes(&self) -> &[Range<u64>] {
        &self.holes
    }

    /// True if `pa` falls inside a hole.
    pub fn is_hole(&self, pa: PAddr) -> bool {
        self.holes.iter().any(|h| h.contains(&pa.0))
    }

    fn check(&self, pa: PAddr, len: u64) -> Result<(), BusError> {
        if pa.0.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(BusError { pa });
        }
        for h in &self.holes {
            if pa.0 < h.end && pa.0 + len > h.start {
                return Err(BusError { pa });
            }
        }
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`BusError`] if the range leaves memory or touches a hole.
    pub fn read(&self, pa: PAddr, buf: &mut [u8]) -> Result<(), BusError> {
        self.check(pa, buf.len() as u64)?;
        let mut off = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let chunk = (off >> CHUNK_SHIFT) as usize;
            let within = (off & (CHUNK_SIZE - 1)) as usize;
            let take = (CHUNK_SIZE as usize - within).min(buf.len() - done);
            let guard = self.chunks[chunk].read();
            buf[done..done + take].copy_from_slice(&guard[within..within + take]);
            off += take as u64;
            done += take;
        }
        Ok(())
    }

    /// Write `buf` starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`BusError`] if the range leaves memory or touches a hole.
    pub fn write(&self, pa: PAddr, buf: &[u8]) -> Result<(), BusError> {
        self.check(pa, buf.len() as u64)?;
        let mut off = pa.0;
        let mut done = 0usize;
        while done < buf.len() {
            let chunk = (off >> CHUNK_SHIFT) as usize;
            let within = (off & (CHUNK_SIZE - 1)) as usize;
            let take = (CHUNK_SIZE as usize - within).min(buf.len() - done);
            let mut guard = self.chunks[chunk].write();
            guard[within..within + take].copy_from_slice(&buf[done..done + take]);
            off += take as u64;
            done += take;
        }
        Ok(())
    }

    /// Read a little-endian `u32` (PTE-sized) at `pa`.
    ///
    /// # Errors
    ///
    /// [`BusError`] as for [`PhysMem::read`].
    pub fn read_u32(&self, pa: PAddr) -> Result<u32, BusError> {
        let mut b = [0u8; 4];
        self.read(pa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Write a little-endian `u32` at `pa`.
    ///
    /// # Errors
    ///
    /// [`BusError`] as for [`PhysMem::write`].
    pub fn write_u32(&self, pa: PAddr, v: u32) -> Result<(), BusError> {
        self.write(pa, &v.to_le_bytes())
    }

    /// Atomically apply `f` to the `u32` at `pa`, returning the old value.
    ///
    /// Used by table walkers to set reference/modify bits without racing
    /// other CPUs' walks.
    ///
    /// # Errors
    ///
    /// [`BusError`] as for [`PhysMem::read`].
    pub fn update_u32(&self, pa: PAddr, f: impl FnOnce(u32) -> u32) -> Result<u32, BusError> {
        self.check(pa, 4)?;
        let chunk = (pa.0 >> CHUNK_SHIFT) as usize;
        let within = (pa.0 & (CHUNK_SIZE - 1)) as usize;
        // A PTE never straddles a 64 KiB stripe (stripes are PTE-aligned).
        if within + 4 <= CHUNK_SIZE as usize {
            let mut guard = self.chunks[chunk].write();
            let old = u32::from_le_bytes(guard[within..within + 4].try_into().unwrap());
            guard[within..within + 4].copy_from_slice(&f(old).to_le_bytes());
            Ok(old)
        } else {
            let old = self.read_u32(pa)?;
            self.write_u32(pa, f(old))?;
            Ok(old)
        }
    }

    /// Zero `len` bytes starting at `pa`.
    ///
    /// # Errors
    ///
    /// [`BusError`] as for [`PhysMem::write`].
    pub fn zero(&self, pa: PAddr, len: u64) -> Result<(), BusError> {
        self.check(pa, len)?;
        let mut off = pa.0;
        let mut left = len;
        while left > 0 {
            let chunk = (off >> CHUNK_SHIFT) as usize;
            let within = (off & (CHUNK_SIZE - 1)) as usize;
            let take = (CHUNK_SIZE - within as u64).min(left) as usize;
            let mut guard = self.chunks[chunk].write();
            guard[within..within + take].fill(0);
            off += take as u64;
            left -= take as u64;
        }
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (ranges must not overlap).
    ///
    /// # Errors
    ///
    /// [`BusError`] as for [`PhysMem::read`].
    ///
    /// # Panics
    ///
    /// Panics if the ranges overlap.
    pub fn copy(&self, src: PAddr, dst: PAddr, len: u64) -> Result<(), BusError> {
        assert!(
            src.0 + len <= dst.0 || dst.0 + len <= src.0,
            "overlapping physical copy"
        );
        // Bounce through a host buffer; page-sized, so cheap.
        let mut buf = vec![0u8; len as usize];
        self.read(src, &mut buf)?;
        self.write(dst, &buf)
    }
}

/// Boot-time allocator of hardware page frames.
///
/// The machine-dependent layer takes frames from here for hardware tables
/// (`pmap_init`); the machine-independent resident page table claims the
/// rest. Frames inside holes are never handed out.
#[derive(Debug)]
pub struct FrameAlloc {
    page_size: u64,
    inner: parking_lot::Mutex<FrameAllocInner>,
}

#[derive(Debug)]
struct FrameAllocInner {
    // Free frames, kept sorted so contiguous runs can be found (the VAX
    // needs physically contiguous page tables).
    free: std::collections::BTreeSet<u64>,
}

impl FrameAlloc {
    /// Build an allocator over all non-hole frames of `mem`, excluding the
    /// first `reserved` bytes (boot/kernel image).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(mem: &PhysMem, page_size: u64, reserved: u64) -> FrameAlloc {
        assert!(page_size.is_power_of_two());
        let mut free = std::collections::BTreeSet::new();
        let first = reserved.div_ceil(page_size);
        for pfn in first..mem.size() / page_size {
            let base = pfn * page_size;
            let in_hole = mem
                .holes()
                .iter()
                .any(|h| base < h.end && base + page_size > h.start);
            if !in_hole {
                free.insert(pfn);
            }
        }
        FrameAlloc {
            page_size,
            inner: parking_lot::Mutex::new(FrameAllocInner { free }),
        }
    }

    /// The hardware page size this allocator deals in.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of free frames.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Allocate one frame.
    pub fn alloc(&self) -> Option<Pfn> {
        let mut g = self.inner.lock();
        let pfn = *g.free.iter().next()?;
        g.free.remove(&pfn);
        Some(Pfn(pfn))
    }

    /// Allocate `n` physically contiguous frames, returning the first.
    pub fn alloc_contig(&self, n: u64) -> Option<Pfn> {
        if n == 0 {
            return None;
        }
        let mut g = self.inner.lock();
        let mut run_start = None;
        let mut run_len = 0u64;
        let mut prev = None;
        let mut found = None;
        for &pfn in g.free.iter() {
            match prev {
                Some(p) if pfn == p + 1 => run_len += 1,
                _ => {
                    run_start = Some(pfn);
                    run_len = 1;
                }
            }
            prev = Some(pfn);
            if run_len == n {
                found = run_start;
                break;
            }
        }
        let start = found?;
        for pfn in start..start + n {
            g.free.remove(&pfn);
        }
        Some(Pfn(start))
    }

    /// Return a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics on double free.
    pub fn free(&self, pfn: Pfn) {
        let mut g = self.inner.lock();
        assert!(g.free.insert(pfn.0), "double free of {pfn}");
    }

    /// Return `n` contiguous frames starting at `start`.
    pub fn free_contig(&self, start: Pfn, n: u64) {
        let mut g = self.inner.lock();
        for pfn in start.0..start.0 + n {
            assert!(g.free.insert(pfn), "double free of pfn:{pfn}");
        }
    }

    /// Drain every remaining frame, handing them to the caller.
    ///
    /// The machine-independent layer uses this at boot to claim all
    /// remaining physical memory for the resident page table.
    pub fn drain(&self) -> Vec<Pfn> {
        let mut g = self.inner.lock();
        let out = g.free.iter().map(|&p| Pfn(p)).collect();
        g.free.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let m = PhysMem::new(256 * 1024, Vec::new());
        m.write(PAddr(70_000), b"hello across a chunk").unwrap();
        let mut buf = [0u8; 20];
        m.read(PAddr(70_000), &mut buf).unwrap();
        assert_eq!(&buf, b"hello across a chunk");
    }

    #[test]
    fn straddles_chunk_boundary() {
        let m = PhysMem::new(256 * 1024, Vec::new());
        let pa = PAddr((1 << 16) - 3);
        m.write(pa, &[1, 2, 3, 4, 5, 6]).unwrap();
        let mut buf = [0u8; 6];
        m.read(pa, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let m = PhysMem::new(4096, Vec::new());
        let mut b = [0u8; 8];
        assert!(m.read(PAddr(4092), &mut b).is_err());
        assert!(m.write(PAddr(4096), &[0]).is_err());
        assert!(m.read(PAddr(u64::MAX), &mut b).is_err());
    }

    #[test]
    fn holes_are_bus_errors() {
        let m = PhysMem::new(64 * 1024, vec![8192..16384]);
        assert!(m.is_hole(PAddr(9000)));
        assert!(!m.is_hole(PAddr(0)));
        let mut b = [0u8; 4];
        assert!(m.read(PAddr(9000), &mut b).is_err());
        // A range overlapping the hole's edge also faults.
        assert!(m.write(PAddr(8190), &[0, 0, 0, 0]).is_err());
        // Just outside is fine.
        m.write(PAddr(8188), &[0, 0, 0, 0]).unwrap();
        m.write(PAddr(16384), &[1]).unwrap();
    }

    #[test]
    fn u32_and_update() {
        let m = PhysMem::new(4096, Vec::new());
        m.write_u32(PAddr(8), 7).unwrap();
        let old = m.update_u32(PAddr(8), |v| v | 0x100).unwrap();
        assert_eq!(old, 7);
        assert_eq!(m.read_u32(PAddr(8)).unwrap(), 0x107);
    }

    #[test]
    fn zero_and_copy() {
        let m = PhysMem::new(1 << 20, Vec::new());
        m.write(PAddr(512), &[0xAA; 512]).unwrap();
        m.copy(PAddr(512), PAddr(2048), 512).unwrap();
        let mut b = [0u8; 512];
        m.read(PAddr(2048), &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0xAA));
        m.zero(PAddr(2048), 512).unwrap();
        m.read(PAddr(2048), &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn frame_alloc_skips_reserved_and_holes() {
        let m = PhysMem::new(64 * 1024, vec![16384..32768]);
        let fa = FrameAlloc::new(&m, 4096, 8192);
        // Frames: 0,1 reserved; 4..8 are the hole; 16 total.
        assert_eq!(fa.free_count(), 16 - 2 - 4);
        let f = fa.alloc().unwrap();
        assert_eq!(f, Pfn(2));
        fa.free(f);
        assert_eq!(fa.free_count(), 10);
    }

    #[test]
    fn contiguous_allocation() {
        let m = PhysMem::new(64 * 1024, Vec::new());
        let fa = FrameAlloc::new(&m, 4096, 0);
        let a = fa.alloc().unwrap(); // pfn 0
        let run = fa.alloc_contig(4).unwrap();
        assert_eq!(run, Pfn(1));
        // Free the single and ask for a big run: must skip the gap.
        fa.free(a);
        let run2 = fa.alloc_contig(8).unwrap();
        assert_eq!(run2, Pfn(5));
        fa.free_contig(run, 4);
        fa.free_contig(run2, 8);
        // Everything except the singleton `a` (already freed) came back.
        assert_eq!(fa.free_count(), 16);
        assert!(fa.alloc_contig(0).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let m = PhysMem::new(64 * 1024, Vec::new());
        let fa = FrameAlloc::new(&m, 4096, 0);
        let f = fa.alloc().unwrap();
        fa.free(f);
        fa.free(f);
    }

    #[test]
    fn drain_takes_everything() {
        let m = PhysMem::new(64 * 1024, Vec::new());
        let fa = FrameAlloc::new(&m, 4096, 0);
        let all = fa.drain();
        assert_eq!(all.len(), 16);
        assert_eq!(fa.free_count(), 0);
        assert!(fa.alloc().is_none());
    }
}
