//! The cycle/latency cost model and per-CPU clocks.
//!
//! Every simulated action — a memory reference, a TLB fill walk, a trap, a
//! page copy, an inter-processor interrupt, a disk transfer — charges a
//! deterministic number of cycles. Benchmarks report `cycles / MHz` as
//! simulated time, which is what lets the harness regenerate the *shape* of
//! the paper's Tables 7-1 and 7-2 without 1987 hardware.
//!
//! CPU work is charged to a per-CPU *system* counter; I/O waits are charged
//! to a *wait* counter that contributes to elapsed time only. This mirrors
//! the paper's "system/elapsed sec" presentation for the file-read rows.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cycle costs for primitive hardware and kernel events.
///
/// The constants are defined once here and printed by the table harness so
/// every reproduced number is traceable to them. Fractional per-byte costs
/// are expressed in hundredths of a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One memory reference (aligned word).
    pub memref: u64,
    /// Fixed MMU overhead on a TLB fill, in addition to the table memrefs.
    pub tlb_fill: u64,
    /// Trap entry + exit (fault or system call, hardware side).
    pub trap: u64,
    /// Fixed software overhead of entering the fault handler / a system call.
    pub kernel_entry: u64,
    /// Cost per data-structure step in kernel software (list hop, hash probe).
    pub lookup_step: u64,
    /// Copying one byte, in hundredths of a cycle.
    pub copy_per_byte_c: u64,
    /// Zero-filling one byte, in hundredths of a cycle.
    pub zero_per_byte_c: u64,
    /// Fixed cost of one pmap operation (register/table bookkeeping).
    pub pmap_op: u64,
    /// Additional pmap cost per hardware page touched.
    pub pmap_per_page: u64,
    /// Sending one inter-processor interrupt.
    pub ipi_send: u64,
    /// Servicing one inter-processor interrupt.
    pub ipi_handle: u64,
    /// A context switch (pmap activate/deactivate).
    pub context_switch: u64,
}

impl CostModel {
    /// The calibration used throughout the reproduction (see DESIGN.md §5).
    pub const fn standard() -> CostModel {
        CostModel {
            memref: 1,
            tlb_fill: 5,
            trap: 200,
            kernel_entry: 150,
            lookup_step: 1,
            copy_per_byte_c: 25,
            zero_per_byte_c: 20,
            pmap_op: 20,
            pmap_per_page: 5,
            ipi_send: 400,
            ipi_handle: 250,
            context_switch: 100,
        }
    }

    /// Cycles to copy `bytes` bytes.
    #[inline]
    pub fn copy_cycles(&self, bytes: u64) -> u64 {
        bytes * self.copy_per_byte_c / 100
    }

    /// Cycles to zero `bytes` bytes.
    #[inline]
    pub fn zero_cycles(&self, bytes: u64) -> u64 {
        bytes * self.zero_per_byte_c / 100
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::standard()
    }
}

/// Latency model for the simulated disk behind [`mach-fs`](https://crates.io)
/// block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskModel {
    /// Average positioning time per I/O, microseconds.
    pub seek_us: u64,
    /// Transfer time per block, microseconds.
    pub per_block_us: u64,
    /// Block size in bytes.
    pub block_size: u64,
}

impl DiskModel {
    /// A period-plausible winchester disk: 15 ms positioning, 0.5 ms per
    /// 4 KB block (so the transfer rate matches the classic 1 ms / 8 KB).
    pub const fn standard() -> DiskModel {
        DiskModel {
            seek_us: 15_000,
            per_block_us: 500,
            block_size: 4_096,
        }
    }

    /// Microseconds for one I/O of `blocks` consecutive blocks.
    #[inline]
    pub fn io_us(&self, blocks: u64) -> u64 {
        self.seek_us + self.per_block_us * blocks
    }
}

impl Default for DiskModel {
    fn default() -> DiskModel {
        DiskModel::standard()
    }
}

/// A per-CPU clock: system cycles plus elapsed-only I/O wait.
///
/// All methods are lock-free and callable from any thread.
#[derive(Debug, Default)]
pub struct Clock {
    system_cycles: AtomicU64,
    wait_us: AtomicU64,
}

impl Clock {
    /// A clock at zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Charge `cycles` of CPU (system) time.
    #[inline]
    pub fn charge(&self, cycles: u64) {
        self.system_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Charge `us` microseconds of I/O wait (elapsed time only).
    #[inline]
    pub fn charge_wait_us(&self, us: u64) {
        self.wait_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total CPU cycles charged so far.
    #[inline]
    pub fn system_cycles(&self) -> u64 {
        self.system_cycles.load(Ordering::Relaxed)
    }

    /// Total I/O wait charged so far, microseconds.
    #[inline]
    pub fn wait_us(&self) -> u64 {
        self.wait_us.load(Ordering::Relaxed)
    }

    /// System time in microseconds for a CPU running at `mhz`.
    #[inline]
    pub fn system_us(&self, mhz: u64) -> u64 {
        self.system_cycles() / mhz.max(1)
    }

    /// Elapsed time in cycle units for a CPU running at `mhz`: system
    /// cycles plus I/O waits converted at the clock rate. This is the
    /// single timeline observability stamps use — a span over an I/O
    /// wait is as wide as the wait, not zero.
    #[inline]
    pub fn elapsed_cycles(&self, mhz: u64) -> u64 {
        self.system_cycles() + self.wait_us() * mhz.max(1)
    }

    /// Elapsed time in microseconds: system time plus I/O waits.
    #[inline]
    pub fn elapsed_us(&self, mhz: u64) -> u64 {
        self.system_us(mhz) + self.wait_us()
    }

    /// Snapshot `(system_cycles, wait_us)`, e.g. to diff around a workload.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            system_cycles: self.system_cycles(),
            wait_us: self.wait_us(),
        }
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.system_cycles.store(0, Ordering::Relaxed);
        self.wait_us.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time reading of a [`Clock`], used to measure intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSnapshot {
    /// System cycles at snapshot time.
    pub system_cycles: u64,
    /// Wait microseconds at snapshot time.
    pub wait_us: u64,
}

impl ClockSnapshot {
    /// The interval between `self` (earlier) and `later`.
    pub fn delta(&self, later: ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            system_cycles: later.system_cycles - self.system_cycles,
            wait_us: later.wait_us - self.wait_us,
        }
    }

    /// System microseconds of this interval at `mhz`.
    pub fn system_us(&self, mhz: u64) -> u64 {
        self.system_cycles / mhz.max(1)
    }

    /// Elapsed microseconds of this interval at `mhz`.
    pub fn elapsed_us(&self, mhz: u64) -> u64 {
        self.system_us(mhz) + self.wait_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_fractional_bytes() {
        let c = CostModel::standard();
        assert_eq!(c.copy_cycles(4096), 1024);
        assert_eq!(c.zero_cycles(1000), 200);
        assert_eq!(c.copy_cycles(0), 0);
    }

    #[test]
    fn disk_model_latency() {
        let d = DiskModel::standard();
        assert_eq!(d.io_us(1), 15_500);
        assert_eq!(d.io_us(4), 17_000);
    }

    #[test]
    fn clock_accumulates_and_splits_system_vs_wait() {
        let c = Clock::new();
        c.charge(5_000_000);
        c.charge_wait_us(250);
        assert_eq!(c.system_cycles(), 5_000_000);
        assert_eq!(c.system_us(5), 1_000_000);
        assert_eq!(c.elapsed_us(5), 1_000_250);
    }

    #[test]
    fn clock_snapshot_delta() {
        let c = Clock::new();
        c.charge(100);
        let a = c.snapshot();
        c.charge(50);
        c.charge_wait_us(7);
        let d = a.delta(c.snapshot());
        assert_eq!(d.system_cycles, 50);
        assert_eq!(d.wait_us, 7);
        assert_eq!(d.elapsed_us(1), 57);
    }

    #[test]
    fn clock_reset() {
        let c = Clock::new();
        c.charge(10);
        c.charge_wait_us(10);
        c.reset();
        assert_eq!(c.system_cycles(), 0);
        assert_eq!(c.wait_us(), 0);
    }

    #[test]
    fn clock_is_safe_from_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Clock>();
    }
}
