//! The MMU architectures assessed by the paper (§5.1), plus the TLB-only
//! experimental machine of its footnote 2.
//!
//! Each submodule defines the *hardware* view: translation-table formats,
//! the table walker (what the MMU does on a TLB miss), and where modify /
//! reference bits live. The machine-dependent `pmap` layer in `mach-pmap`
//! writes these formats; the machine-independent layer never sees them.
//!
//! | arch | machine(s) | page | tables | quirk |
//! |---|---|---|---|---|
//! | [`vax`] | µVAX II, VAX 8200/8650/11-784 | 512 B | linear per-region tables + length registers | 8 MB of table per 2 GB space |
//! | [`romp`] | IBM RT PC | 2 KB | inverted page table + hash anchor table | one mapping per physical page |
//! | [`sun3`] | SUN 3/160 | 8 KB | segment map → pmeg arrays in the MMU | only 8 contexts; physical holes |
//! | [`ns32082`] | Encore MultiMax, Sequent Balance | 512 B | two-level tables | 16 MB VA, 32 MB PA, RMW-as-read erratum |
//! | [`tlbsoft`] | IBM RP3-style simulator | 4 KB | **none** | TLB misses trap to a software refill handler |

pub mod ns32082;
pub mod romp;
pub mod sun3;
pub mod tlbsoft;
pub mod vax;

use crate::addr::{Access, Fault, HwProt, Pfn, VAddr};
use crate::phys::PhysMem;

/// Which MMU architecture a [`crate::machine::Machine`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// DEC VAX: linear page tables located by base/length register pairs.
    Vax,
    /// IBM RT PC (ROMP/Rosetta): inverted page table.
    Romp,
    /// SUN 3 (Motorola 68020 + Sun MMU): contexts, segment maps, pmegs.
    Sun3,
    /// National Semiconductor NS32082: two-level page tables.
    Ns32082,
    /// A TLB-only experimental machine (the paper's RP3 footnote): no
    /// in-memory hardware tables at all.
    TlbSoft,
}

impl ArchKind {
    /// Hardware page size in bytes.
    pub fn hw_page_size(self) -> u64 {
        match self {
            ArchKind::Vax => 512,
            ArchKind::Romp => 2048,
            ArchKind::Sun3 => 8192,
            ArchKind::Ns32082 => 512,
            ArchKind::TlbSoft => 4096,
        }
    }

    /// Human-readable architecture name.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Vax => "VAX",
            ArchKind::Romp => "IBM RT PC (ROMP)",
            ArchKind::Sun3 => "SUN 3",
            ArchKind::Ns32082 => "NS32082",
            ArchKind::TlbSoft => "RP3 (TLB-only)",
        }
    }

    /// Highest user-mode virtual address + 1.
    ///
    /// The paper leans on these differences: the RT PC can address a full
    /// 4 GB under Mach, the VAX at most 2 GB of user space, the SUN 3
    /// 256 MB per context and the NS32082 a mere 16 MB.
    pub fn user_va_limit(self) -> u64 {
        match self {
            ArchKind::Vax => 1 << 31,
            ArchKind::Romp => 1 << 32,
            ArchKind::Sun3 => 1 << 28,
            ArchKind::Ns32082 => 1 << 24,
            ArchKind::TlbSoft => tlbsoft::VA_LIMIT,
        }
    }

    /// Whether the TLB is tagged (no flush needed on address-space switch).
    pub fn tlb_tagged(self) -> bool {
        matches!(self, ArchKind::Romp | ArchKind::Sun3 | ArchKind::TlbSoft)
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A successful table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOk {
    /// Translated frame.
    pub pfn: Pfn,
    /// Hardware permissions recorded in the entry.
    pub prot: HwProt,
    /// Memory references the walk performed (charged to the clock).
    pub memrefs: u32,
    /// TLB space tag for the entry (context / segment id / 0).
    pub space: u32,
    /// Virtual page number under that tag.
    pub vpn: u64,
    /// True if the modify bit is set after this walk.
    pub dirty: bool,
}

/// Per-CPU MMU register file. The variant must match the machine's
/// [`ArchKind`]; `pmap_activate` loads these on context switch.
#[derive(Debug, Clone)]
pub enum CpuRegs {
    /// VAX base/length register pairs for P0, P1 and system regions.
    Vax(vax::VaxRegs),
    /// ROMP segment registers.
    Romp(romp::RompRegs),
    /// SUN 3 context register.
    Sun3 {
        /// The active context (0..8).
        context: u8,
    },
    /// NS32082 page-table base register.
    Ns32082(ns32082::NsRegs),
    /// TLB-only machine's address-space id register.
    TlbSoft(tlbsoft::TlbSoftRegs),
}

impl CpuRegs {
    /// Power-on register state for `kind` (nothing mapped).
    pub fn reset(kind: ArchKind) -> CpuRegs {
        match kind {
            ArchKind::Vax => CpuRegs::Vax(vax::VaxRegs::default()),
            ArchKind::Romp => CpuRegs::Romp(romp::RompRegs::default()),
            ArchKind::Sun3 => CpuRegs::Sun3 { context: 0 },
            ArchKind::Ns32082 => CpuRegs::Ns32082(ns32082::NsRegs::default()),
            ArchKind::TlbSoft => CpuRegs::TlbSoft(tlbsoft::TlbSoftRegs::default()),
        }
    }
}

/// Architecture-global MMU state (beyond per-CPU registers).
#[derive(Debug)]
pub enum ArchGlobal {
    /// The VAX keeps everything in physical-memory tables.
    Vax,
    /// ROMP: the physical location of the inverted page table and the hash
    /// anchor table, fixed at boot.
    Romp(romp::RompLayout),
    /// SUN 3: the MMU's segment maps and pmegs live in the MMU itself.
    Sun3(parking_lot::Mutex<sun3::Sun3Mmu>),
    /// NS32082: whether the read-modify-write erratum is active.
    Ns32082(ns32082::NsGlobal),
    /// TLB-only machine: the OS-owned software translation store the
    /// firmware miss handler refills from.
    TlbSoft(parking_lot::Mutex<tlbsoft::SoftTables>),
}

/// Compute the TLB lookup key for `va` under `regs`.
///
/// # Errors
///
/// Faults if the address is untranslatable before any table is consulted
/// (beyond an architectural limit, or through an invalid segment register).
pub fn tlb_key(
    kind: ArchKind,
    regs: &CpuRegs,
    va: VAddr,
    access: Access,
) -> Result<(u32, u64), Fault> {
    match (kind, regs) {
        (ArchKind::Vax, CpuRegs::Vax(_)) => vax::tlb_key(va, access),
        (ArchKind::Romp, CpuRegs::Romp(r)) => romp::tlb_key(r, va, access),
        (ArchKind::Sun3, CpuRegs::Sun3 { context }) => sun3::tlb_key(*context, va, access),
        (ArchKind::Ns32082, CpuRegs::Ns32082(_)) => ns32082::tlb_key(va, access),
        (ArchKind::TlbSoft, CpuRegs::TlbSoft(r)) => tlbsoft::tlb_key(r, va, access),
        _ => panic!("register file does not match architecture {kind:?}"),
    }
}

/// Run the hardware table walk for `va`.
///
/// `set_dirty` requests that the modify bit be set (a write access). The
/// walk also sets the reference bit where the architecture keeps one.
///
/// # Errors
///
/// A [`Fault`] exactly as the hardware would raise it.
pub fn walk(
    kind: ArchKind,
    phys: &PhysMem,
    global: &ArchGlobal,
    regs: &CpuRegs,
    va: VAddr,
    access: Access,
) -> Result<WalkOk, Fault> {
    match (kind, global, regs) {
        (ArchKind::Vax, ArchGlobal::Vax, CpuRegs::Vax(r)) => vax::walk(phys, r, va, access),
        (ArchKind::Romp, ArchGlobal::Romp(layout), CpuRegs::Romp(r)) => {
            romp::walk(phys, layout, r, va, access)
        }
        (ArchKind::Sun3, ArchGlobal::Sun3(mmu), CpuRegs::Sun3 { context }) => {
            sun3::walk(&mut mmu.lock(), *context, va, access)
        }
        (ArchKind::Ns32082, ArchGlobal::Ns32082(_), CpuRegs::Ns32082(r)) => {
            ns32082::walk(phys, r, va, access)
        }
        (ArchKind::TlbSoft, ArchGlobal::TlbSoft(t), CpuRegs::TlbSoft(r)) => {
            tlbsoft::walk(&mut t.lock(), r, va, access)
        }
        _ => panic!("MMU state does not match architecture {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_are_period_accurate() {
        assert_eq!(ArchKind::Vax.hw_page_size(), 512);
        assert_eq!(ArchKind::Romp.hw_page_size(), 2048);
        assert_eq!(ArchKind::Sun3.hw_page_size(), 8192);
        assert_eq!(ArchKind::Ns32082.hw_page_size(), 512);
    }

    #[test]
    fn va_limits_match_the_paper() {
        // "An RT PC task can address a full 4 gigabytes ... the VAX
        // architecture allows at most 2 gigabytes of user address space."
        assert_eq!(ArchKind::Romp.user_va_limit(), 1 << 32);
        assert_eq!(ArchKind::Vax.user_va_limit(), 1 << 31);
        // "Only 16 megabytes of virtual memory may be addressed per page
        // table" (NS32082); SUN 3 contexts are 256 MB.
        assert_eq!(ArchKind::Ns32082.user_va_limit(), 1 << 24);
        assert_eq!(ArchKind::Sun3.user_va_limit(), 1 << 28);
    }

    #[test]
    fn tagged_tlbs() {
        assert!(ArchKind::Romp.tlb_tagged());
        assert!(ArchKind::Sun3.tlb_tagged());
        assert!(!ArchKind::Vax.tlb_tagged());
        assert!(!ArchKind::Ns32082.tlb_tagged());
    }

    #[test]
    fn reset_regs_match_kind() {
        for kind in [
            ArchKind::Vax,
            ArchKind::Romp,
            ArchKind::Sun3,
            ArchKind::Ns32082,
            ArchKind::TlbSoft,
        ] {
            let regs = CpuRegs::reset(kind);
            let ok = matches!(
                (kind, &regs),
                (ArchKind::Vax, CpuRegs::Vax(_))
                    | (ArchKind::Romp, CpuRegs::Romp(_))
                    | (ArchKind::Sun3, CpuRegs::Sun3 { .. })
                    | (ArchKind::Ns32082, CpuRegs::Ns32082(_))
                    | (ArchKind::TlbSoft, CpuRegs::TlbSoft(_))
            );
            assert!(ok, "reset regs mismatch for {kind:?}");
        }
    }
}
