//! VAX memory management: linear page tables located by base/length
//! register pairs.
//!
//! The 32-bit VAX virtual address space is divided by its top two bits into
//! the P0 region (grows up from 0), the P1 region (grows down toward
//! `0x8000_0000`) and the system region. Each region has a *base register*
//! pointing at a linear array of 4-byte PTEs and a *length register*.
//!
//! The paper's complaint (§5.1): mapping a full 2 GB user space takes 8 MB
//! of linear page table, so Mach's VAX pmap constructs only the parts of
//! the table actually needed and may destroy them to save space.
//!
//! Simplifications relative to real hardware, none of which affect the
//! paper's claims: PTEs hold our uniform simplified bit layout rather than
//! VAX protection codes; base registers hold physical addresses (real P0/P1
//! base registers held system-space virtual addresses); and the walker
//! maintains a software reference bit (the real VAX had none — systems
//! sampled references by invalidation, which is exactly what the bit spares
//! us from simulating).

use crate::addr::{Access, Fault, FaultCode, HwProt, PAddr, Pfn, VAddr};
use crate::phys::PhysMem;

/// Hardware page size: 512 bytes — "partially the result of the small VAX
/// page size" is why VAX tables are so large.
pub const PAGE_SIZE: u64 = 512;

/// PTE valid bit.
pub const PTE_V: u32 = 1 << 31;
/// PTE read-permission bit (simplified protection encoding).
pub const PTE_R: u32 = 1 << 30;
/// PTE write-permission bit.
pub const PTE_W: u32 = 1 << 29;
/// PTE modify bit, set by the hardware on first write.
pub const PTE_M: u32 = 1 << 26;
/// Software reference bit, set by the walker on any use.
pub const PTE_REF: u32 = 1 << 25;
/// Mask of the frame-number field.
pub const PTE_PFN_MASK: u32 = (1 << 21) - 1;

/// Build a valid PTE.
pub fn pte(pfn: Pfn, prot: HwProt) -> u32 {
    let mut v = PTE_V | (pfn.0 as u32 & PTE_PFN_MASK);
    if prot.allows_read() || prot.allows_execute() {
        v |= PTE_R;
    }
    if prot.allows_write() {
        v |= PTE_W;
    }
    v
}

/// Decode the permissions of a PTE.
pub fn pte_prot(word: u32) -> HwProt {
    let mut p = HwProt::NONE;
    if word & PTE_R != 0 {
        p |= HwProt::READ | HwProt::EXECUTE;
    }
    if word & PTE_W != 0 {
        p |= HwProt::WRITE;
    }
    p
}

/// The VAX address-space regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// User program region, grows up from address 0.
    P0,
    /// User stack region, grows down from `0x8000_0000`.
    P1,
    /// System (kernel) region.
    System,
}

/// Number of pages in each of P0/P1 (1 GB regions of 512-byte pages).
pub const REGION_PAGES: u64 = 1 << 21;

/// Split a virtual address into its region and page number within it.
///
/// # Errors
///
/// Length-faults on the reserved fourth region.
pub fn decode(va: VAddr) -> Result<(Region, u64), Fault> {
    let region = (va.0 >> 30) & 3;
    let vpn = (va.0 >> 9) & (REGION_PAGES - 1);
    match region {
        0 => Ok((Region::P0, vpn)),
        1 => Ok((Region::P1, vpn)),
        2 => Ok((Region::System, vpn)),
        _ => Err(Fault {
            va,
            access: Access::Read,
            code: FaultCode::Length,
        }),
    }
}

/// The VAX per-CPU MMU registers: a base/length pair per region.
///
/// `P0LR` counts valid PTEs from the bottom of the region; an access at or
/// above it length-faults. `P1LR` is inverted, as on the real machine: the
/// P1 table maps pages `p1lr..REGION_PAGES`, and `p1br` is biased so that
/// `p1br + 4*vpn` addresses the PTE (hence the signed type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VaxRegs {
    /// P0 base register (physical address of the P0 page table).
    pub p0br: u64,
    /// P0 length register (number of valid PTEs).
    pub p0lr: u32,
    /// P1 base register, biased by `-4 * p1lr` (signed; see type docs).
    pub p1br: i64,
    /// P1 length register: lowest valid page number in P1.
    pub p1lr: u32,
    /// System base register.
    pub sbr: u64,
    /// System length register.
    pub slr: u32,
}

impl VaxRegs {
    /// Physical address of the PTE for `(region, vpn)`, or a length fault.
    pub fn pte_addr(
        &self,
        region: Region,
        vpn: u64,
        va: VAddr,
        access: Access,
    ) -> Result<PAddr, Fault> {
        let length_fault = Fault {
            va,
            access,
            code: FaultCode::Length,
        };
        match region {
            Region::P0 => {
                if vpn >= self.p0lr as u64 {
                    return Err(length_fault);
                }
                Ok(PAddr(self.p0br + 4 * vpn))
            }
            Region::P1 => {
                if vpn < self.p1lr as u64 {
                    return Err(length_fault);
                }
                let addr = self.p1br + 4 * vpn as i64;
                debug_assert!(addr >= 0, "P1 base register bias underflow");
                Ok(PAddr(addr as u64))
            }
            Region::System => {
                if vpn >= self.slr as u64 {
                    return Err(length_fault);
                }
                Ok(PAddr(self.sbr + 4 * vpn))
            }
        }
    }
}

/// TLB key: the VAX TLB is untagged (space 0) and flushed on switch.
pub fn tlb_key(va: VAddr, access: Access) -> Result<(u32, u64), Fault> {
    // Reject the reserved region before the TLB sees it.
    let (_, _) = decode(va).map_err(|mut f| {
        f.access = access;
        f
    })?;
    Ok((0, va.0 >> 9))
}

/// The hardware table walk.
///
/// # Errors
///
/// Length faults outside the regions' valid ranges, invalid faults on
/// clear PTEs, protection faults when the PTE forbids `access`.
pub fn walk(
    phys: &PhysMem,
    regs: &VaxRegs,
    va: VAddr,
    access: Access,
) -> Result<super::WalkOk, Fault> {
    let (region, vpn) = decode(va).map_err(|mut f| {
        f.access = access;
        f
    })?;
    let pte_pa = regs.pte_addr(region, vpn, va, access)?;
    let word = phys.read_u32(pte_pa).map_err(|_| Fault {
        va,
        access,
        code: FaultCode::Invalid,
    })?;
    let mut memrefs = 1u32;
    if word & PTE_V == 0 {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Invalid,
        });
    }
    let prot = pte_prot(word);
    if !prot.allows(access) {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Protection,
        });
    }
    // Maintain reference and modify bits.
    let want = PTE_REF | if access.is_write() { PTE_M } else { 0 };
    let mut dirty = word & PTE_M != 0;
    if word & want != want {
        phys.update_u32(pte_pa, |w| w | want).expect("PTE readable");
        memrefs += 1;
    }
    if access.is_write() {
        dirty = true;
    }
    Ok(super::WalkOk {
        pfn: Pfn((word & PTE_PFN_MASK) as u64),
        prot,
        memrefs,
        space: 0,
        vpn: va.0 >> 9,
        dirty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(1 << 20, Vec::new())
    }

    fn rw() -> HwProt {
        HwProt::READ | HwProt::WRITE
    }

    #[test]
    fn decode_regions() {
        assert_eq!(decode(VAddr(0)).unwrap().0, Region::P0);
        assert_eq!(decode(VAddr(0x4000_0000)).unwrap().0, Region::P1);
        assert_eq!(decode(VAddr(0x8000_0000)).unwrap().0, Region::System);
        assert!(decode(VAddr(0xC000_0000)).is_err());
        // Page numbers.
        assert_eq!(decode(VAddr(512 * 7 + 3)).unwrap().1, 7);
        assert_eq!(decode(VAddr(0x4000_0000 + 512 * 5)).unwrap().1, 5);
    }

    #[test]
    fn p0_walk_translates() {
        let m = mem();
        let table = 0x10_000u64;
        let regs = VaxRegs {
            p0br: table,
            p0lr: 16,
            ..Default::default()
        };
        m.write_u32(PAddr(table + 4 * 3), pte(Pfn(42), rw()))
            .unwrap();
        let ok = walk(&m, &regs, VAddr(512 * 3 + 100), Access::Read).unwrap();
        assert_eq!(ok.pfn, Pfn(42));
        assert!(ok.prot.allows_write());
        assert_eq!(ok.space, 0);
        assert_eq!(ok.vpn, 3);
        // Reference bit was set, costing a second memref.
        assert_eq!(ok.memrefs, 2);
        assert!(m.read_u32(PAddr(table + 4 * 3)).unwrap() & PTE_REF != 0);
    }

    #[test]
    fn length_register_bounds_p0() {
        let m = mem();
        let regs = VaxRegs {
            p0br: 0x10_000,
            p0lr: 4,
            ..Default::default()
        };
        let err = walk(&m, &regs, VAddr(512 * 4), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Length);
    }

    #[test]
    fn p1_grows_down() {
        let m = mem();
        // Map the top 8 pages of P1: pages REGION_PAGES-8 .. REGION_PAGES.
        let p1lr = (REGION_PAGES - 8) as u32;
        let table = 0x20_000u64; // 8 PTEs at 0x20_000
        let regs = VaxRegs {
            p1br: table as i64 - 4 * p1lr as i64,
            p1lr,
            ..Default::default()
        };
        let top_page = REGION_PAGES - 1;
        m.write_u32(PAddr(table + 4 * 7), pte(Pfn(9), rw()))
            .unwrap();
        let va = VAddr((1 << 30) + top_page * 512);
        let ok = walk(&m, &regs, va, Access::Write).unwrap();
        assert_eq!(ok.pfn, Pfn(9));
        assert!(ok.dirty);
        // Below the length register faults.
        let low = VAddr((1 << 30) + (p1lr as u64 - 1) * 512);
        assert_eq!(
            walk(&m, &regs, low, Access::Read).unwrap_err().code,
            FaultCode::Length
        );
    }

    #[test]
    fn invalid_pte_faults() {
        let m = mem();
        let regs = VaxRegs {
            p0br: 0x10_000,
            p0lr: 16,
            ..Default::default()
        };
        let err = walk(&m, &regs, VAddr(0), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn protection_fault_on_readonly_write() {
        let m = mem();
        let table = 0x10_000u64;
        let regs = VaxRegs {
            p0br: table,
            p0lr: 16,
            ..Default::default()
        };
        m.write_u32(PAddr(table), pte(Pfn(1), HwProt::READ))
            .unwrap();
        assert!(walk(&m, &regs, VAddr(0), Access::Read).is_ok());
        let err = walk(&m, &regs, VAddr(0), Access::Write).unwrap_err();
        assert_eq!(err.code, FaultCode::Protection);
    }

    #[test]
    fn modify_bit_set_on_write_only() {
        let m = mem();
        let table = 0x10_000u64;
        let regs = VaxRegs {
            p0br: table,
            p0lr: 16,
            ..Default::default()
        };
        m.write_u32(PAddr(table), pte(Pfn(1), rw())).unwrap();
        walk(&m, &regs, VAddr(0), Access::Read).unwrap();
        assert_eq!(m.read_u32(PAddr(table)).unwrap() & PTE_M, 0);
        let ok = walk(&m, &regs, VAddr(0), Access::Write).unwrap();
        assert!(ok.dirty);
        assert_ne!(m.read_u32(PAddr(table)).unwrap() & PTE_M, 0);
        // Second write does not need another update memref.
        let ok2 = walk(&m, &regs, VAddr(0), Access::Write).unwrap();
        assert_eq!(ok2.memrefs, 1);
    }

    #[test]
    fn system_region_uses_sbr() {
        let m = mem();
        let regs = VaxRegs {
            sbr: 0x30_000,
            slr: 4,
            ..Default::default()
        };
        m.write_u32(PAddr(0x30_000 + 8), pte(Pfn(5), rw())).unwrap();
        let va = VAddr(0x8000_0000 + 2 * 512);
        assert_eq!(walk(&m, &regs, va, Access::Read).unwrap().pfn, Pfn(5));
    }

    #[test]
    fn reserved_region_length_faults_in_key() {
        assert!(tlb_key(VAddr(0xC000_0000), Access::Read).is_err());
        assert_eq!(tlb_key(VAddr(0x200), Access::Read).unwrap(), (0, 1));
    }

    #[test]
    fn pte_roundtrip() {
        let w = pte(Pfn(0x1FFF), HwProt::READ);
        assert_eq!(w & PTE_PFN_MASK, 0x1FFF);
        assert!(pte_prot(w).allows_read());
        assert!(!pte_prot(w).allows_write());
        assert!(pte_prot(w).allows_execute());
    }
}
