//! National Semiconductor NS32082 (Encore MultiMax, Sequent Balance):
//! two-level page tables — and three famous limitations.
//!
//! The paper (§5.1) lists them verbatim:
//!
//! 1. *"Only 16 megabytes of virtual memory may be addressed per page
//!    table"* — a 24-bit translated address space.
//! 2. *"Only 32 megabytes of physical memory may be addressed"* — a 16-bit
//!    frame number of 512-byte pages.
//! 3. *"A chip bug apparently causes read-modify-write faults to always be
//!    reported as read faults. Mach depends on the ability to detect write
//!    faults for proper copy-on-write fault handling."*
//!
//! The erratum is modeled faithfully (see [`NsGlobal`]) and can be switched
//! off to quantify the cost of the software workaround.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::addr::{Access, Fault, FaultCode, HwProt, PAddr, Pfn, VAddr};
use crate::phys::PhysMem;

/// Hardware page size: 512 bytes.
pub const PAGE_SIZE: u64 = 512;

/// Virtual address space per page table: 16 MB.
pub const VA_LIMIT: u64 = 1 << 24;

/// Maximum addressable physical memory: 32 MB.
pub const PA_LIMIT: u64 = 1 << 25;

/// Level-1 table entries (each mapping 64 KB via a level-2 table).
pub const L1_ENTRIES: u64 = 256;

/// Level-2 table entries (each mapping one 512-byte page).
pub const L2_ENTRIES: u64 = 128;

/// PTE valid bit (both levels).
pub const PTE_V: u32 = 1 << 31;
/// PTE read-permission bit (level 2).
pub const PTE_R: u32 = 1 << 30;
/// PTE write-permission bit (level 2).
pub const PTE_W: u32 = 1 << 29;
/// PTE modify bit (level 2).
pub const PTE_M: u32 = 1 << 26;
/// PTE reference bit (level 2).
pub const PTE_REF: u32 = 1 << 25;
/// Mask of the 16-bit frame-number field.
pub const PTE_PFN_MASK: u32 = 0xFFFF;

/// Build a valid level-2 PTE.
///
/// # Panics
///
/// Panics if `pfn` exceeds the 32 MB physical limit.
pub fn pte(pfn: Pfn, prot: HwProt) -> u32 {
    assert!(
        pfn.0 * PAGE_SIZE < PA_LIMIT,
        "NS32082 cannot address {} (32 MB physical limit)",
        pfn
    );
    let mut v = PTE_V | pfn.0 as u32;
    if prot.allows_read() || prot.allows_execute() {
        v |= PTE_R;
    }
    if prot.allows_write() {
        v |= PTE_W;
    }
    v
}

/// Build a valid level-1 entry pointing at the level-2 table in `frame`.
pub fn l1_entry(table_frame: Pfn) -> u32 {
    PTE_V | table_frame.0 as u32
}

/// Decode level-2 PTE permissions.
pub fn pte_prot(word: u32) -> HwProt {
    let mut p = HwProt::NONE;
    if word & PTE_R != 0 {
        p |= HwProt::READ | HwProt::EXECUTE;
    }
    if word & PTE_W != 0 {
        p |= HwProt::WRITE;
    }
    p
}

/// Per-CPU MMU registers: the page-table base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NsRegs {
    /// Physical address of the level-1 table (1 KB, 256 entries).
    pub ptb: u64,
    /// Translation enabled.
    pub enabled: bool,
}

/// Global chip configuration: the erratum switch.
#[derive(Debug, Default)]
pub struct NsGlobal {
    rmw_bug: AtomicBool,
}

impl NsGlobal {
    /// A chip with the erratum present (the paper's hardware).
    pub fn with_bug() -> NsGlobal {
        let g = NsGlobal::default();
        g.rmw_bug.store(true, Ordering::Relaxed);
        g
    }

    /// Whether read-modify-write faults lie about the access type.
    pub fn rmw_bug(&self) -> bool {
        self.rmw_bug.load(Ordering::Relaxed)
    }

    /// Enable or disable the erratum (the NS32382 fixed it).
    pub fn set_rmw_bug(&self, on: bool) {
        self.rmw_bug.store(on, Ordering::Relaxed);
    }
}

/// TLB key: untagged (space 0), flushed on address-space switch.
pub fn tlb_key(va: VAddr, access: Access) -> Result<(u32, u64), Fault> {
    if va.0 >= VA_LIMIT {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Length,
        });
    }
    Ok((0, va.0 >> 9))
}

/// The two-level hardware walk.
///
/// # Errors
///
/// Length faults above 16 MB; invalid faults on clear entries at either
/// level; protection faults when the level-2 entry denies `access`.
pub fn walk(
    phys: &PhysMem,
    regs: &NsRegs,
    va: VAddr,
    access: Access,
) -> Result<super::WalkOk, Fault> {
    if va.0 >= VA_LIMIT || !regs.enabled {
        return Err(Fault {
            va,
            access,
            code: if va.0 >= VA_LIMIT {
                FaultCode::Length
            } else {
                FaultCode::Invalid
            },
        });
    }
    let l1_idx = va.0 >> 16; // 256 entries × 64 KB
    let l2_idx = (va.0 >> 9) & (L2_ENTRIES - 1);
    let invalid = Fault {
        va,
        access,
        code: FaultCode::Invalid,
    };
    let l1 = phys
        .read_u32(PAddr(regs.ptb + 4 * l1_idx))
        .map_err(|_| invalid)?;
    let mut memrefs = 1u32;
    if l1 & PTE_V == 0 {
        return Err(invalid);
    }
    let l2_base = ((l1 & PTE_PFN_MASK) as u64) * PAGE_SIZE;
    let pte_pa = PAddr(l2_base + 4 * l2_idx);
    let word = phys.read_u32(pte_pa).map_err(|_| invalid)?;
    memrefs += 1;
    if word & PTE_V == 0 {
        return Err(invalid);
    }
    let prot = pte_prot(word);
    if !prot.allows(access) {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Protection,
        });
    }
    let want = PTE_REF | if access.is_write() { PTE_M } else { 0 };
    if word & want != want {
        phys.update_u32(pte_pa, |w| w | want).expect("PTE readable");
        memrefs += 1;
    }
    Ok(super::WalkOk {
        pfn: Pfn((word & PTE_PFN_MASK) as u64),
        prot,
        memrefs,
        space: 0,
        vpn: va.0 >> 9,
        dirty: access.is_write() || word & PTE_M != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> HwProt {
        HwProt::READ | HwProt::WRITE
    }

    /// Build a one-page mapping: L1 at 0x4000, L2 at 0x4400.
    fn setup(phys: &PhysMem, vpn: u64, pfn: Pfn, prot: HwProt) -> NsRegs {
        let l1_base = 0x4000u64;
        let l2_frame = Pfn(0x4400 / PAGE_SIZE);
        let l1_idx = vpn / L2_ENTRIES;
        let l2_idx = vpn % L2_ENTRIES;
        phys.write_u32(PAddr(l1_base + 4 * l1_idx), l1_entry(l2_frame))
            .unwrap();
        phys.write_u32(PAddr(0x4400 + 4 * l2_idx), pte(pfn, prot))
            .unwrap();
        NsRegs {
            ptb: l1_base,
            enabled: true,
        }
    }

    #[test]
    fn two_level_walk() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = setup(&phys, 300, Pfn(77), rw());
        let va = VAddr(300 * PAGE_SIZE + 9);
        let ok = walk(&phys, &regs, va, Access::Read).unwrap();
        assert_eq!(ok.pfn, Pfn(77));
        assert_eq!(ok.memrefs, 3); // L1 + L2 + reference-bit update
        let again = walk(&phys, &regs, va, Access::Read).unwrap();
        assert_eq!(again.memrefs, 2);
    }

    #[test]
    fn sixteen_megabyte_limit() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = setup(&phys, 0, Pfn(1), rw());
        let err = walk(&phys, &regs, VAddr(VA_LIMIT), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Length);
        assert!(tlb_key(VAddr(VA_LIMIT + 5), Access::Read).is_err());
    }

    #[test]
    #[should_panic(expected = "32 MB physical limit")]
    fn thirtytwo_megabyte_physical_limit() {
        let _ = pte(Pfn(PA_LIMIT / PAGE_SIZE), rw());
    }

    #[test]
    fn invalid_levels_fault() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = setup(&phys, 0, Pfn(1), rw());
        // L1 entry 5 is clear.
        let err = walk(&phys, &regs, VAddr(5 << 16), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
        // L2 entry 1 (same L1 as vpn 0) is clear.
        let err = walk(&phys, &regs, VAddr(PAGE_SIZE), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn disabled_mmu_faults() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = NsRegs::default();
        assert!(walk(&phys, &regs, VAddr(0), Access::Read).is_err());
    }

    #[test]
    fn modify_bit_protocol() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = setup(&phys, 4, Pfn(9), rw());
        let va = VAddr(4 * PAGE_SIZE);
        let r = walk(&phys, &regs, va, Access::Read).unwrap();
        assert!(!r.dirty);
        let w = walk(&phys, &regs, va, Access::Write).unwrap();
        assert!(w.dirty);
        let pte_word = phys.read_u32(PAddr(0x4400 + 16)).unwrap();
        assert_ne!(pte_word & PTE_M, 0);
        assert_ne!(pte_word & PTE_REF, 0);
    }

    #[test]
    fn protection_fault() {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let regs = setup(&phys, 0, Pfn(9), HwProt::READ);
        let err = walk(&phys, &regs, VAddr(0), Access::Write).unwrap_err();
        assert_eq!(err.code, FaultCode::Protection);
    }

    #[test]
    fn erratum_switch() {
        let g = NsGlobal::with_bug();
        assert!(g.rmw_bug());
        g.set_rmw_bug(false);
        assert!(!g.rmw_bug());
        assert!(!NsGlobal::default().rmw_bug());
    }
}
