//! SUN 3 memory management: contexts, segment maps and pmegs.
//!
//! The Sun MMU holds its translation state in dedicated MMU RAM rather
//! than main memory: 8 *contexts*, each with a segment map of 2048 entries
//! (one per 128 KB of the 256 MB address space), where each entry names a
//! *pmeg* — a page-map-entry group of 16 PTEs mapping 8 KB pages. There
//! are only 256 pmegs in the whole MMU.
//!
//! The paper's observations (§5.1): segments+pmegs support sparse address
//! spaces reasonably, but only 8 contexts can exist at once — more active
//! tasks thrash contexts exactly like the RT's inverted table thrashes
//! aliases — and the physical address space has *holes* (display memory),
//! which the SUN pmap must hide from the machine-independent layer.

use crate::addr::{Access, Fault, FaultCode, HwProt, Pfn, VAddr};

/// Hardware page size: 8 KB.
pub const PAGE_SIZE: u64 = 8192;

/// Number of hardware contexts.
pub const N_CONTEXTS: usize = 8;

/// Number of pmegs in the MMU.
pub const N_PMEGS: usize = 256;

/// PTEs per pmeg (16 × 8 KB = 128 KB per segment).
pub const PTES_PER_PMEG: usize = 16;

/// Segment-map entries per context (256 MB / 128 KB).
pub const SEGS_PER_CONTEXT: usize = 2048;

/// An invalid segment-map entry.
pub const NO_PMEG: u16 = u16::MAX;

/// One page table entry in a pmeg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sun3Pte {
    /// Valid bit.
    pub valid: bool,
    /// Write permitted (read implied by valid).
    pub write: bool,
    /// Physical frame.
    pub pfn: u32,
    /// Modify bit.
    pub modified: bool,
    /// Reference bit.
    pub referenced: bool,
}

/// The MMU RAM: segment maps for all 8 contexts plus the pmeg array.
///
/// This state is *global to the machine* (the MMU sits between CPU and
/// bus); the per-CPU register is just the context number.
#[derive(Debug)]
pub struct Sun3Mmu {
    /// `seg_map[context][segment]` names a pmeg or [`NO_PMEG`].
    pub seg_map: Vec<[u16; SEGS_PER_CONTEXT]>,
    /// The 256 pmegs.
    pub pmegs: Vec<[Sun3Pte; PTES_PER_PMEG]>,
}

impl Sun3Mmu {
    /// MMU RAM at power-on: everything invalid.
    pub fn new() -> Sun3Mmu {
        Sun3Mmu {
            seg_map: vec![[NO_PMEG; SEGS_PER_CONTEXT]; N_CONTEXTS],
            pmegs: vec![[Sun3Pte::default(); PTES_PER_PMEG]; N_PMEGS],
        }
    }

    /// Decompose a virtual address into (segment index, pte index).
    ///
    /// # Errors
    ///
    /// Length-faults above the 256 MB context size.
    pub fn decompose(va: VAddr, access: Access) -> Result<(usize, usize), Fault> {
        if va.0 >= (1 << 28) {
            return Err(Fault {
                va,
                access,
                code: FaultCode::Length,
            });
        }
        let seg = (va.0 >> 17) as usize; // 128 KB segments
        let pte = ((va.0 >> 13) & 0xF) as usize; // 8 KB pages
        Ok((seg, pte))
    }
}

impl Default for Sun3Mmu {
    fn default() -> Sun3Mmu {
        Sun3Mmu::new()
    }
}

/// TLB key: tagged by context.
pub fn tlb_key(context: u8, va: VAddr, access: Access) -> Result<(u32, u64), Fault> {
    Sun3Mmu::decompose(va, access)?;
    Ok((context as u32, va.0 >> 13))
}

/// The MMU lookup: segment map, then pmeg.
///
/// # Errors
///
/// Length faults beyond 256 MB, invalid faults on unmapped segments or
/// pages, protection faults on write to a read-only page.
pub fn walk(
    mmu: &mut Sun3Mmu,
    context: u8,
    va: VAddr,
    access: Access,
) -> Result<super::WalkOk, Fault> {
    let (seg, pte_idx) = Sun3Mmu::decompose(va, access)?;
    let pmeg = mmu.seg_map[context as usize][seg];
    if pmeg == NO_PMEG {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Invalid,
        });
    }
    let pte = &mut mmu.pmegs[pmeg as usize][pte_idx];
    if !pte.valid {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Invalid,
        });
    }
    let mut prot = HwProt::READ | HwProt::EXECUTE;
    if pte.write {
        prot |= HwProt::WRITE;
    }
    if !prot.allows(access) {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Protection,
        });
    }
    pte.referenced = true;
    if access.is_write() {
        pte.modified = true;
    }
    Ok(super::WalkOk {
        pfn: Pfn(pte.pfn as u64),
        prot,
        memrefs: 2, // segment map + pmeg lookup
        space: context as u32,
        vpn: va.0 >> 13,
        dirty: pte.modified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_page(mmu: &mut Sun3Mmu, ctx: u8, va: VAddr, pfn: u32, write: bool) {
        let (seg, idx) = Sun3Mmu::decompose(va, Access::Read).unwrap();
        if mmu.seg_map[ctx as usize][seg] == NO_PMEG {
            // Naive pmeg allocation for tests: first never-used pmeg.
            let free = (0..N_PMEGS)
                .find(|&p| !mmu.seg_map.iter().any(|m| m.contains(&(p as u16))))
                .unwrap() as u16;
            mmu.seg_map[ctx as usize][seg] = free;
        }
        let pmeg = mmu.seg_map[ctx as usize][seg] as usize;
        mmu.pmegs[pmeg][idx] = Sun3Pte {
            valid: true,
            write,
            pfn,
            modified: false,
            referenced: false,
        };
    }

    #[test]
    fn unmapped_faults() {
        let mut mmu = Sun3Mmu::new();
        let err = walk(&mut mmu, 0, VAddr(0x2000), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn above_context_limit_length_faults() {
        let mut mmu = Sun3Mmu::new();
        let err = walk(&mut mmu, 0, VAddr(1 << 28), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Length);
        assert!(tlb_key(0, VAddr(1 << 28), Access::Read).is_err());
    }

    #[test]
    fn mapped_page_translates_and_sets_bits() {
        let mut mmu = Sun3Mmu::new();
        map_page(&mut mmu, 2, VAddr(0x40000), 99, true);
        let ok = walk(&mut mmu, 2, VAddr(0x40000 + 12), Access::Write).unwrap();
        assert_eq!(ok.pfn, Pfn(99));
        assert_eq!(ok.space, 2);
        assert_eq!(ok.memrefs, 2);
        assert!(ok.dirty);
        let (seg, idx) = Sun3Mmu::decompose(VAddr(0x40000), Access::Read).unwrap();
        let pmeg = mmu.seg_map[2][seg] as usize;
        assert!(mmu.pmegs[pmeg][idx].modified);
        assert!(mmu.pmegs[pmeg][idx].referenced);
    }

    #[test]
    fn contexts_are_independent() {
        let mut mmu = Sun3Mmu::new();
        map_page(&mut mmu, 0, VAddr(0), 1, false);
        map_page(&mut mmu, 1, VAddr(0), 2, false);
        assert_eq!(
            walk(&mut mmu, 0, VAddr(0), Access::Read).unwrap().pfn,
            Pfn(1)
        );
        assert_eq!(
            walk(&mut mmu, 1, VAddr(0), Access::Read).unwrap().pfn,
            Pfn(2)
        );
        // Context 3 has nothing.
        assert!(walk(&mut mmu, 3, VAddr(0), Access::Read).is_err());
    }

    #[test]
    fn read_only_denies_write() {
        let mut mmu = Sun3Mmu::new();
        map_page(&mut mmu, 0, VAddr(0), 1, false);
        assert!(walk(&mut mmu, 0, VAddr(0), Access::Read).is_ok());
        let err = walk(&mut mmu, 0, VAddr(8), Access::Write).unwrap_err();
        assert_eq!(err.code, FaultCode::Protection);
        // Execute is permitted wherever read is.
        assert!(walk(&mut mmu, 0, VAddr(0), Access::Execute).is_ok());
    }

    #[test]
    fn pages_within_segment_share_a_pmeg() {
        let mut mmu = Sun3Mmu::new();
        map_page(&mut mmu, 0, VAddr(0), 1, false);
        map_page(&mut mmu, 0, VAddr(PAGE_SIZE), 2, false);
        let (seg, _) = Sun3Mmu::decompose(VAddr(0), Access::Read).unwrap();
        let (seg2, _) = Sun3Mmu::decompose(VAddr(PAGE_SIZE), Access::Read).unwrap();
        assert_eq!(seg, seg2);
        assert_eq!(
            walk(&mut mmu, 0, VAddr(PAGE_SIZE), Access::Read)
                .unwrap()
                .pfn,
            Pfn(2)
        );
    }

    #[test]
    fn decompose_geometry() {
        // 128 KB per segment, 16 pages of 8 KB each.
        let (seg, idx) =
            Sun3Mmu::decompose(VAddr(128 * 1024 * 3 + 8192 * 5), Access::Read).unwrap();
        assert_eq!(seg, 3);
        assert_eq!(idx, 5);
    }
}
