//! A TLB-only experimental machine (the IBM RP3 of the paper's footnote).
//!
//! "In principle, Mach needs no in-memory hardware-defined data structure
//! to manage virtual memory. Machines which provide only an easily
//! manipulated TLB could be accommodated by Mach and would need little
//! code to be written for the pmap module. In fact, a version of Mach has
//! already run on a simulator for the IBM RP3 which assumed only TLB
//! hardware support" (§5, footnote 2).
//!
//! There is **no hardware-defined in-memory table**: on a TLB miss the
//! processor traps to a software miss handler that refills the TLB from
//! an OS-owned structure ([`SoftTables`], written by the pmap module and
//! consulted here the way RP3/MIPS-style miss handlers would). The
//! machine-dependent module for this architecture is the smallest of the
//! five ports — which is the paper's point.

use std::collections::HashMap;

use crate::addr::{Access, Fault, FaultCode, HwProt, Pfn, VAddr};

/// Hardware page size: 4 KB (as on the RP3).
pub const PAGE_SIZE: u64 = 4096;

/// Virtual address space: 1 GB per address-space id.
pub const VA_LIMIT: u64 = 1 << 30;

/// Number of address-space identifiers the TLB tags entries with.
pub const N_ASIDS: u32 = 1 << 12;

/// Per-CPU MMU register: just the current address-space id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbSoftRegs {
    /// The active address-space identifier.
    pub asid: u32,
    /// Translation enabled.
    pub enabled: bool,
}

/// One software translation entry (the OS's, not the hardware's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftPte {
    /// The mapped frame.
    pub pfn: Pfn,
    /// Permissions.
    pub prot: HwProt,
    /// Modify bit, maintained by the miss/mod handler.
    pub modified: bool,
    /// Reference bit.
    pub referenced: bool,
}

/// The OS-owned translation store the software miss handler refills from.
/// The pmap module writes it; [`walk`] (the "miss handler") reads it.
#[derive(Debug, Default)]
pub struct SoftTables {
    /// `(asid, vpn)` → entry.
    pub map: HashMap<(u32, u64), SoftPte>,
}

/// TLB key: tagged by ASID, so no flush on switch.
pub fn tlb_key(regs: &TlbSoftRegs, va: VAddr, access: Access) -> Result<(u32, u64), Fault> {
    if va.0 >= VA_LIMIT || !regs.enabled {
        return Err(Fault {
            va,
            access,
            code: if va.0 >= VA_LIMIT {
                FaultCode::Length
            } else {
                FaultCode::Invalid
            },
        });
    }
    Ok((regs.asid, va.0 / PAGE_SIZE))
}

/// The software TLB-miss handler: refill from [`SoftTables`] or fault to
/// the machine-independent layer.
pub fn walk(
    tables: &mut SoftTables,
    regs: &TlbSoftRegs,
    va: VAddr,
    access: Access,
) -> Result<super::WalkOk, Fault> {
    let (asid, vpn) = tlb_key(regs, va, access)?;
    let Some(e) = tables.map.get_mut(&(asid, vpn)) else {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Invalid,
        });
    };
    if !e.prot.allows(access) {
        return Err(Fault {
            va,
            access,
            code: FaultCode::Protection,
        });
    }
    e.referenced = true;
    if access.is_write() {
        e.modified = true;
    }
    Ok(super::WalkOk {
        pfn: e.pfn,
        prot: e.prot,
        memrefs: 4, // software miss-handler cost (trap-less fast path)
        space: asid,
        vpn,
        dirty: e.modified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_with_no_entry_faults_to_the_os() {
        let mut t = SoftTables::default();
        let regs = TlbSoftRegs {
            asid: 1,
            enabled: true,
        };
        let err = walk(&mut t, &regs, VAddr(0x1000), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn refill_sets_reference_and_modify() {
        let mut t = SoftTables::default();
        t.map.insert(
            (1, 2),
            SoftPte {
                pfn: Pfn(9),
                prot: HwProt::READ | HwProt::WRITE,
                modified: false,
                referenced: false,
            },
        );
        let regs = TlbSoftRegs {
            asid: 1,
            enabled: true,
        };
        let ok = walk(&mut t, &regs, VAddr(2 * PAGE_SIZE), Access::Read).unwrap();
        assert_eq!(ok.pfn, Pfn(9));
        assert!(!ok.dirty);
        assert!(t.map[&(1, 2)].referenced);
        assert!(!t.map[&(1, 2)].modified);
        let ok = walk(&mut t, &regs, VAddr(2 * PAGE_SIZE), Access::Write).unwrap();
        assert!(ok.dirty);
        assert!(t.map[&(1, 2)].modified);
    }

    #[test]
    fn asids_isolate() {
        let mut t = SoftTables::default();
        t.map.insert(
            (1, 0),
            SoftPte {
                pfn: Pfn(1),
                prot: HwProt::READ,
                modified: false,
                referenced: false,
            },
        );
        let other = TlbSoftRegs {
            asid: 2,
            enabled: true,
        };
        assert!(walk(&mut t, &other, VAddr(0), Access::Read).is_err());
    }

    #[test]
    fn limits() {
        let mut t = SoftTables::default();
        let regs = TlbSoftRegs {
            asid: 0,
            enabled: true,
        };
        assert_eq!(
            walk(&mut t, &regs, VAddr(VA_LIMIT), Access::Read)
                .unwrap_err()
                .code,
            FaultCode::Length
        );
        let off = TlbSoftRegs::default();
        assert!(tlb_key(&off, VAddr(0), Access::Read).is_err());
    }
}
