//! IBM RT PC (ROMP + Rosetta MMU): a single inverted page table.
//!
//! Instead of per-task tables, one table describes which virtual address is
//! mapped to each *physical* frame; translation hashes the virtual tag
//! through a hash anchor table (HAT) into a chain of inverted-page-table
//! (IPT) entries. A full 4 GB address space costs no extra table space —
//! but **each physical page can have at most one valid mapping**, so
//! sharing pages between address spaces causes the alias faults the paper
//! measures (§5.1).
//!
//! Addressing: the top 4 bits of a 32-bit address select one of 16 segment
//! registers, each holding a 12-bit segment identifier; the remaining
//! 28 bits address within a 256 MB segment of 2 KB pages.

use crate::addr::{Access, Fault, FaultCode, HwProt, PAddr, Pfn, VAddr};
use crate::phys::PhysMem;

/// Hardware page size: 2 KB.
pub const PAGE_SIZE: u64 = 2048;

/// Chain terminator / empty HAT bucket.
pub const NIL: u32 = u32::MAX;

/// Segment-register valid bit.
pub const SEGREG_VALID: u32 = 1 << 31;

/// IPT flags word: read permitted.
pub const F_READ: u32 = 1;
/// IPT flags word: write permitted.
pub const F_WRITE: u32 = 2;
/// IPT flags word: modify bit.
pub const F_M: u32 = 4;
/// IPT flags word: reference bit.
pub const F_REF: u32 = 8;

/// IPT word-0 valid bit (the tag occupies the low 29 bits).
pub const TAG_VALID: u32 = 1 << 31;

/// Where the boot firmware placed the IPT and HAT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RompLayout {
    /// Base of the inverted page table (16 bytes per physical frame).
    pub ipt_base: PAddr,
    /// Base of the hash anchor table (4 bytes per bucket).
    pub hat_base: PAddr,
    /// Number of physical frames (= number of IPT entries).
    pub n_frames: u64,
    /// Number of HAT buckets (a power of two).
    pub buckets: u64,
}

impl RompLayout {
    /// Physical address of frame `pfn`'s IPT entry.
    pub fn entry_addr(&self, pfn: Pfn) -> PAddr {
        debug_assert!(pfn.0 < self.n_frames);
        PAddr(self.ipt_base.0 + 16 * pfn.0)
    }

    /// Physical address of HAT bucket `b`.
    pub fn hat_addr(&self, b: u64) -> PAddr {
        debug_assert!(b < self.buckets);
        PAddr(self.hat_base.0 + 4 * b)
    }

    /// The hash of a virtual tag.
    pub fn hash(&self, tag: u32) -> u64 {
        ((tag ^ (tag >> 13)) as u64) & (self.buckets - 1)
    }

    /// Total bytes the IPT + HAT occupy.
    pub fn table_bytes(&self) -> u64 {
        16 * self.n_frames + 4 * self.buckets
    }
}

/// Compose the 29-bit virtual tag from a segment id and in-segment page.
pub fn make_tag(segid: u16, vpage: u64) -> u32 {
    debug_assert!(segid < (1 << 12));
    debug_assert!(vpage < (1 << 17));
    ((segid as u32) << 17) | vpage as u32
}

/// The per-CPU segment registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RompRegs {
    /// 16 segment registers; a value with [`SEGREG_VALID`] set maps the
    /// corresponding 256 MB window to segment `value & 0xFFF`.
    pub seg: [u32; 16],
}

impl RompRegs {
    /// Resolve `va` to `(segid, in-segment page number)`.
    ///
    /// # Errors
    ///
    /// Faults if the selected segment register is invalid.
    pub fn resolve(&self, va: VAddr, access: Access) -> Result<(u16, u64), Fault> {
        let idx = ((va.0 >> 28) & 0xF) as usize;
        let reg = self.seg[idx];
        if reg & SEGREG_VALID == 0 {
            return Err(Fault {
                va,
                access,
                code: FaultCode::Invalid,
            });
        }
        let vpage = (va.0 >> 11) & ((1 << 17) - 1);
        Ok(((reg & 0xFFF) as u16, vpage))
    }
}

/// TLB key: ROMP TLB entries are tagged with the segment id, so no flush
/// is needed on address-space switch.
pub fn tlb_key(regs: &RompRegs, va: VAddr, access: Access) -> Result<(u32, u64), Fault> {
    let (segid, vpage) = regs.resolve(va, access)?;
    Ok((segid as u32, vpage))
}

/// The hardware reverse-translation walk: hash the tag, follow the chain.
///
/// # Errors
///
/// Invalid faults when no IPT entry carries the tag (including through an
/// invalid segment register); protection faults when the entry denies.
pub fn walk(
    phys: &PhysMem,
    layout: &RompLayout,
    regs: &RompRegs,
    va: VAddr,
    access: Access,
) -> Result<super::WalkOk, Fault> {
    let (segid, vpage) = regs.resolve(va, access)?;
    let tag = make_tag(segid, vpage);
    let bucket = layout.hash(tag);
    let mut idx = phys
        .read_u32(layout.hat_addr(bucket))
        .expect("HAT resident");
    let mut memrefs = 1u32; // the HAT probe
    while idx != NIL {
        debug_assert!((idx as u64) < layout.n_frames, "corrupt IPT chain");
        let ea = layout.entry_addr(Pfn(idx as u64));
        let w0 = phys.read_u32(ea).expect("IPT resident");
        memrefs += 1;
        if w0 & TAG_VALID != 0 && w0 & 0x1FFF_FFFF == tag {
            let flags = phys.read_u32(PAddr(ea.0 + 4)).expect("IPT resident");
            memrefs += 1;
            let mut prot = HwProt::NONE;
            if flags & F_READ != 0 {
                prot |= HwProt::READ | HwProt::EXECUTE;
            }
            if flags & F_WRITE != 0 {
                prot |= HwProt::WRITE;
            }
            if !prot.allows(access) {
                return Err(Fault {
                    va,
                    access,
                    code: FaultCode::Protection,
                });
            }
            let want = F_REF | if access.is_write() { F_M } else { 0 };
            if flags & want != want {
                phys.update_u32(PAddr(ea.0 + 4), |w| w | want)
                    .expect("IPT resident");
                memrefs += 1;
            }
            return Ok(super::WalkOk {
                pfn: Pfn(idx as u64),
                prot,
                memrefs,
                space: segid as u32,
                vpn: vpage,
                dirty: access.is_write() || flags & F_M != 0,
            });
        }
        idx = phys.read_u32(PAddr(ea.0 + 8)).expect("IPT resident");
        memrefs += 1;
    }
    Err(Fault {
        va,
        access,
        code: FaultCode::Invalid,
    })
}

/// Initialize an empty IPT + HAT in physical memory and return the layout.
///
/// Called once at machine construction; the tables live in low physical
/// memory just above `base`.
pub fn init_tables(phys: &PhysMem, base: PAddr, n_frames: u64) -> RompLayout {
    let buckets = n_frames.next_power_of_two();
    let layout = RompLayout {
        ipt_base: base,
        hat_base: PAddr(base.0 + 16 * n_frames),
        n_frames,
        buckets,
    };
    phys.zero(layout.ipt_base, 16 * n_frames).expect("IPT fits");
    for b in 0..buckets {
        phys.write_u32(layout.hat_addr(b), NIL).expect("HAT fits");
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, RompLayout, RompRegs) {
        let phys = PhysMem::new(1 << 20, Vec::new());
        let layout = init_tables(&phys, PAddr(0x4000), 64);
        let mut regs = RompRegs::default();
        regs.seg[0] = SEGREG_VALID | 7; // map window 0 to segment 7
        (phys, layout, regs)
    }

    /// Hand-install a mapping the way pmap would: IPT entry + HAT chain.
    fn install(phys: &PhysMem, l: &RompLayout, pfn: Pfn, tag: u32, flags: u32) {
        let ea = l.entry_addr(pfn);
        phys.write_u32(ea, TAG_VALID | tag).unwrap();
        phys.write_u32(PAddr(ea.0 + 4), flags).unwrap();
        // Push onto the front of the hash chain.
        let b = l.hash(tag);
        let head = phys.read_u32(l.hat_addr(b)).unwrap();
        phys.write_u32(PAddr(ea.0 + 8), head).unwrap();
        phys.write_u32(l.hat_addr(b), pfn.0 as u32).unwrap();
    }

    #[test]
    fn empty_table_faults() {
        let (phys, layout, regs) = setup();
        let err = walk(&phys, &layout, &regs, VAddr(0x800), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn invalid_segment_register_faults() {
        let (phys, layout, regs) = setup();
        // Window 5 was never loaded.
        let err = walk(&phys, &layout, &regs, VAddr(0x5000_0000), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
        assert!(tlb_key(&regs, VAddr(0x5000_0000), Access::Read).is_err());
    }

    #[test]
    fn walk_finds_installed_mapping() {
        let (phys, layout, regs) = setup();
        let tag = make_tag(7, 3); // segment 7, page 3
        install(&phys, &layout, Pfn(12), tag, F_READ | F_WRITE);
        let va = VAddr(3 * PAGE_SIZE + 5);
        let ok = walk(&phys, &layout, &regs, va, Access::Write).unwrap();
        assert_eq!(ok.pfn, Pfn(12));
        assert_eq!(ok.space, 7);
        assert_eq!(ok.vpn, 3);
        assert!(ok.dirty);
        // Modify + reference bits were set in the entry.
        let flags = phys
            .read_u32(PAddr(layout.entry_addr(Pfn(12)).0 + 4))
            .unwrap();
        assert_ne!(flags & F_M, 0);
        assert_ne!(flags & F_REF, 0);
    }

    #[test]
    fn hash_chain_collision_resolves() {
        let (phys, layout, regs) = setup();
        // Two tags in the same bucket: install both, look up the deeper one.
        let tag_a = make_tag(7, 1);
        // Find a colliding tag for segment 7.
        let mut page_b = 2u64;
        while layout.hash(make_tag(7, page_b)) != layout.hash(tag_a) {
            page_b += 1;
        }
        let tag_b = make_tag(7, page_b);
        install(&phys, &layout, Pfn(10), tag_a, F_READ);
        install(&phys, &layout, Pfn(11), tag_b, F_READ);
        // tag_a is now second in the chain.
        let ok = walk(&phys, &layout, &regs, VAddr(PAGE_SIZE), Access::Read).unwrap();
        assert_eq!(ok.pfn, Pfn(10));
        let ok_b = walk(
            &phys,
            &layout,
            &regs,
            VAddr(page_b * PAGE_SIZE),
            Access::Read,
        )
        .unwrap();
        assert_eq!(ok_b.pfn, Pfn(11));
        // The deeper entry cost more memory references.
        assert!(ok.memrefs > ok_b.memrefs);
    }

    #[test]
    fn protection_enforced() {
        let (phys, layout, regs) = setup();
        install(&phys, &layout, Pfn(5), make_tag(7, 0), F_READ);
        assert!(walk(&phys, &layout, &regs, VAddr(0), Access::Read).is_ok());
        let err = walk(&phys, &layout, &regs, VAddr(0), Access::Write).unwrap_err();
        assert_eq!(err.code, FaultCode::Protection);
    }

    #[test]
    fn one_mapping_per_frame_is_structural() {
        // The IPT is indexed by frame: installing a second VA for the same
        // frame *replaces* the first (this is the paper's alias
        // restriction, exercised at the pmap level).
        let (phys, layout, regs) = setup();
        install(&phys, &layout, Pfn(5), make_tag(7, 0), F_READ);
        // Overwrite the entry with a different tag (page 9).
        let ea = layout.entry_addr(Pfn(5));
        phys.write_u32(ea, TAG_VALID | make_tag(7, 9)).unwrap();
        let err = walk(&phys, &layout, &regs, VAddr(0), Access::Read).unwrap_err();
        assert_eq!(err.code, FaultCode::Invalid);
    }

    #[test]
    fn layout_sizes() {
        let (_, layout, _) = setup();
        assert_eq!(layout.buckets, 64);
        assert_eq!(layout.table_bytes(), 64 * 16 + 64 * 4);
        assert_eq!(layout.hat_base.0, 0x4000 + 64 * 16);
    }

    #[test]
    fn tag_packing() {
        let t = make_tag(0xABC, 0x1_FFFF);
        assert_eq!(t >> 17, 0xABC);
        assert_eq!(t & 0x1_FFFF, 0x1_FFFF);
    }
}
