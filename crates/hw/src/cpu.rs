//! A simulated processor: a TLB, an MMU register file, a clock, and an
//! active flag the shootdown machinery consults.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::arch::{ArchKind, CpuRegs};
use crate::cost::Clock;
use crate::tlb::{Tlb, TlbStats};

/// One processor of a [`crate::machine::Machine`].
///
/// Memory accesses go through [`crate::machine::Machine`] (the CPU alone
/// cannot translate — it needs the bus, tables and interrupt fabric).
#[derive(Debug)]
pub struct Cpu {
    id: usize,
    /// Cycle/wait accounting for work done on this CPU.
    pub clock: Clock,
    pub(crate) tlb: Mutex<Tlb>,
    pub(crate) regs: Mutex<CpuRegs>,
    active: AtomicBool,
    /// The host thread currently driving this CPU (a real CPU executes
    /// one instruction stream; binding from two threads is a caller bug).
    pub(crate) owner: Mutex<Option<std::thread::ThreadId>>,
}

impl Cpu {
    pub(crate) fn new(id: usize, kind: ArchKind, tlb_entries: usize) -> Cpu {
        Cpu {
            id,
            clock: Clock::new(),
            tlb: Mutex::new(Tlb::new(tlb_entries)),
            regs: Mutex::new(CpuRegs::reset(kind)),
            active: AtomicBool::new(false),
            owner: Mutex::new(None),
        }
    }

    /// This CPU's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Snapshot of TLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.lock().stats()
    }

    /// Replace the MMU register file (what `pmap_activate` does).
    pub fn load_regs(&self, regs: CpuRegs) {
        *self.regs.lock() = regs;
    }

    /// Read the MMU register file.
    pub fn regs(&self) -> CpuRegs {
        self.regs.lock().clone()
    }

    /// Mutate the MMU register file in place.
    pub fn with_regs<R>(&self, f: impl FnOnce(&mut CpuRegs) -> R) -> R {
        f(&mut self.regs.lock())
    }

    /// True if a thread is currently executing on this CPU.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    pub(crate) fn set_active(&self, on: bool) {
        self.active.store(on, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cpu_state() {
        let cpu = Cpu::new(3, ArchKind::Vax, 8);
        assert_eq!(cpu.id(), 3);
        assert!(!cpu.is_active());
        assert_eq!(cpu.tlb_stats(), TlbStats::default());
        assert!(matches!(cpu.regs(), CpuRegs::Vax(_)));
    }

    #[test]
    fn regs_roundtrip() {
        let cpu = Cpu::new(0, ArchKind::Sun3, 8);
        cpu.load_regs(CpuRegs::Sun3 { context: 5 });
        assert!(matches!(cpu.regs(), CpuRegs::Sun3 { context: 5 }));
        cpu.with_regs(|r| {
            if let CpuRegs::Sun3 { context } = r {
                *context = 2;
            }
        });
        assert!(matches!(cpu.regs(), CpuRegs::Sun3 { context: 2 }));
    }

    #[test]
    fn active_flag() {
        let cpu = Cpu::new(0, ArchKind::Romp, 8);
        cpu.set_active(true);
        assert!(cpu.is_active());
        cpu.set_active(false);
        assert!(!cpu.is_active());
    }
}
