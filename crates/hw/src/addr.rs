//! Address and access primitives shared by every simulated architecture.
//!
//! Newtypes keep virtual addresses, physical addresses and frame numbers
//! statically distinct; confusing them is the classic VM-system bug.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A virtual address as issued by a simulated CPU.
///
/// # Examples
///
/// ```
/// use mach_hw::addr::VAddr;
/// let va = VAddr(0x1000);
/// assert_eq!(va.offset_in(512), 0);
/// assert_eq!(va.round_down(4096), VAddr(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A physical address into the simulated memory of a [`crate::phys::PhysMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

/// A *hardware* page frame number: `PAddr / hardware page size`.
///
/// The hardware page size is a property of the architecture (512 bytes on
/// the VAX and NS32082, 2 KB on the ROMP, 8 KB on the SUN 3); the
/// machine-independent layer deals in Mach pages, which are a power-of-two
/// multiple of this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl VAddr {
    /// Byte offset of this address within a page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page_size` is not a power of two.
    #[inline]
    pub fn offset_in(self, page_size: u64) -> u64 {
        debug_assert!(page_size.is_power_of_two());
        self.0 & (page_size - 1)
    }

    /// Round down to a multiple of `align` (a power of two).
    #[inline]
    pub fn round_down(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0 & !(align - 1))
    }

    /// Round up to a multiple of `align` (a power of two).
    #[inline]
    pub fn round_up(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0.wrapping_add(align - 1) & !(align - 1))
    }

    /// True if the address is a multiple of `align`.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.offset_in(align) == 0
    }
}

impl PAddr {
    /// The hardware frame containing this address.
    #[inline]
    pub fn pfn(self, page_size: u64) -> Pfn {
        Pfn(self.0 / page_size)
    }

    /// Round down to a multiple of `align` (a power of two).
    #[inline]
    pub fn round_down(self, align: u64) -> PAddr {
        debug_assert!(align.is_power_of_two());
        PAddr(self.0 & !(align - 1))
    }
}

impl Pfn {
    /// The base physical address of this frame.
    #[inline]
    pub fn base(self, page_size: u64) -> PAddr {
        PAddr(self.0 * page_size)
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for VAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<VAddr> for VAddr {
    type Output = u64;
    fn sub(self, rhs: VAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl Add<u64> for PAddr {
    type Output = PAddr;
    fn add(self, rhs: u64) -> PAddr {
        PAddr(self.0 + rhs)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Hardware permission bits, as granted by a translation entry.
///
/// These are the *hardware* permissions the machine-dependent layer installs;
/// the machine-independent layer has a richer notion (current/maximum
/// protection) that it narrows into one of these.
///
/// # Examples
///
/// ```
/// use mach_hw::addr::HwProt;
/// let p = HwProt::READ | HwProt::WRITE;
/// assert!(p.allows_write());
/// assert!(!p.allows_execute());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HwProt(u8);

impl HwProt {
    /// No access at all.
    pub const NONE: HwProt = HwProt(0);
    /// Read permission.
    pub const READ: HwProt = HwProt(1);
    /// Write permission.
    pub const WRITE: HwProt = HwProt(2);
    /// Execute permission (treated as read by architectures without it).
    pub const EXECUTE: HwProt = HwProt(4);
    /// Read, write and execute.
    pub const ALL: HwProt = HwProt(7);

    /// Construct from raw bits (bit 0 read, bit 1 write, bit 2 execute).
    #[inline]
    pub fn from_bits(bits: u8) -> HwProt {
        HwProt(bits & 7)
    }

    /// The raw bit representation.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True if reads are allowed.
    #[inline]
    pub fn allows_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if writes are allowed.
    #[inline]
    pub fn allows_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// True if instruction fetch is allowed.
    #[inline]
    pub fn allows_execute(self) -> bool {
        self.0 & 4 != 0
    }

    /// True if `access` is permitted.
    #[inline]
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.allows_read(),
            Access::Write => self.allows_write(),
            Access::Execute => self.allows_execute() || self.allows_read(),
        }
    }

    /// Intersection of two permission sets.
    #[inline]
    pub fn intersect(self, other: HwProt) -> HwProt {
        HwProt(self.0 & other.0)
    }

    /// True if no access is permitted.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for HwProt {
    type Output = HwProt;
    fn bitor(self, rhs: HwProt) -> HwProt {
        HwProt(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for HwProt {
    fn bitor_assign(&mut self, rhs: HwProt) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for HwProt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.allows_read() { 'r' } else { '-' },
            if self.allows_write() { 'w' } else { '-' },
            if self.allows_execute() { 'x' } else { '-' }
        )
    }
}

/// The kind of memory access a CPU attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A data read.
    Read,
    /// A data write.
    Write,
    /// An instruction fetch.
    Execute,
}

impl Access {
    /// True for [`Access::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Execute => "execute",
        })
    }
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCode {
    /// No valid translation exists for the page.
    Invalid,
    /// A valid translation exists but forbids the attempted access.
    Protection,
    /// The address lies outside the architecture's translatable range
    /// (e.g. beyond a VAX region length register, or above the NS32082's
    /// 16 MB limit).
    Length,
}

/// A page fault raised by the simulated MMU.
///
/// The machine-independent fault handler receives these and resolves them
/// against its own data structures; the hardware tables are only a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Faulting virtual address.
    pub va: VAddr,
    /// The access the program attempted, *as reported by the hardware*.
    /// The NS32082 erratum makes this lie for read-modify-write cycles.
    pub access: Access,
    /// Why translation failed.
    pub code: FaultCode,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault ({:?}) at {}", self.access, self.code, self.va)
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_rounding() {
        assert_eq!(VAddr(0x1234).round_down(0x1000), VAddr(0x1000));
        assert_eq!(VAddr(0x1234).round_up(0x1000), VAddr(0x2000));
        assert_eq!(VAddr(0x1000).round_up(0x1000), VAddr(0x1000));
        assert_eq!(VAddr(0x1234).offset_in(0x1000), 0x234);
        assert!(VAddr(0x2000).is_aligned(0x1000));
        assert!(!VAddr(0x2001).is_aligned(0x1000));
    }

    #[test]
    fn paddr_pfn_roundtrip() {
        let pa = PAddr(3 * 512 + 17);
        assert_eq!(pa.pfn(512), Pfn(3));
        assert_eq!(Pfn(3).base(512), PAddr(3 * 512));
        assert_eq!(pa.round_down(512), PAddr(3 * 512));
    }

    #[test]
    fn vaddr_arithmetic() {
        assert_eq!(VAddr(0x100) + 0x10, VAddr(0x110));
        assert_eq!(VAddr(0x110) - VAddr(0x100), 0x10);
        let mut v = VAddr(1);
        v += 2;
        assert_eq!(v, VAddr(3));
    }

    #[test]
    fn prot_bits() {
        let p = HwProt::READ | HwProt::EXECUTE;
        assert!(p.allows(Access::Read));
        assert!(!p.allows(Access::Write));
        assert!(p.allows(Access::Execute));
        assert_eq!(p.bits(), 5);
        assert_eq!(HwProt::from_bits(0xFF), HwProt::ALL);
        assert_eq!(p.intersect(HwProt::READ), HwProt::READ);
        assert!(HwProt::NONE.is_none());
        // Execute falls back to read permission on architectures that do not
        // distinguish it.
        assert!(HwProt::READ.allows(Access::Execute));
    }

    #[test]
    fn prot_display() {
        assert_eq!((HwProt::READ | HwProt::WRITE).to_string(), "rw-");
        assert_eq!(HwProt::NONE.to_string(), "---");
        assert_eq!(HwProt::ALL.to_string(), "rwx");
    }

    #[test]
    fn fault_display() {
        let f = Fault {
            va: VAddr(0x200),
            access: Access::Write,
            code: FaultCode::Protection,
        };
        let s = f.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("0x200"));
    }
}
