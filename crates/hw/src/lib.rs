//! # mach-hw — the simulated hardware substrate
//!
//! This crate stands in for the 1987 machines the Mach VM paper was
//! measured on: it simulates byte-addressable physical memory, one or more
//! CPUs with per-CPU TLBs (and, crucially, **no** hardware TLB coherence),
//! inter-processor interrupts, and the in-memory translation structures of
//! four period MMU architectures — the VAX, the IBM RT PC's inverted page
//! table, the SUN 3's context/segment/pmeg MMU, and the NS32082 found in
//! the Encore MultiMax and Sequent Balance.
//!
//! Everything a real MMU would decide is decided here, in the hardware's
//! own table formats stored in simulated physical memory; the
//! machine-dependent `pmap` layer (crate `mach-pmap`) writes those formats
//! and the machine-independent VM (crate `mach-vm`) never sees them.
//!
//! A deterministic cost model charges cycles for memory references, table
//! walks, traps, copies and IPIs so benchmarks can report simulated time.
//!
//! ## Quick example
//!
//! ```
//! use mach_hw::machine::{Machine, MachineModel};
//! use mach_hw::addr::{VAddr, Access};
//!
//! let machine = Machine::boot(MachineModel::micro_vax_ii());
//! let _bind = machine.bind_cpu(0);
//! // Nothing is mapped yet: the very first access faults, exactly the
//! // event the machine-independent fault handler exists to resolve.
//! assert!(machine.load_u32(VAddr(0x1000)).is_err());
//! ```

// `single_range_in_vec_init` fires on hole lists with one hole — but a
// machine may have any number of holes; the Vec is the API.
#![allow(clippy::single_range_in_vec_init)]

pub mod addr;
pub mod arch;
pub mod bus;
pub mod cost;
pub mod cpu;
pub mod machine;
pub mod phys;
pub mod tlb;

pub use addr::{Access, Fault, FaultCode, HwProt, PAddr, Pfn, VAddr};
pub use arch::{ArchKind, CpuRegs};
pub use cost::{Clock, ClockSnapshot, CostModel, DiskModel};
pub use machine::{Machine, MachineModel};
pub use tlb::FlushScope;
