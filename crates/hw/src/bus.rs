//! The inter-processor interrupt bus.
//!
//! None of the multiprocessors that ran Mach could touch a remote CPU's
//! TLB; the only tool was an interrupt (paper §5.2). This module provides
//! exactly that: a mailbox per CPU, delivered when the target CPU next
//! polls (which the simulated CPUs do at every memory access boundary).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::tlb::FlushScope;

/// What an inter-processor interrupt asks the target CPU to do.
#[derive(Debug, Clone)]
pub enum IpiKind {
    /// Flush part of the target's TLB.
    FlushTlb(FlushScope),
    /// Flush several scopes in one interrupt — the coalesced form: the
    /// dominant cost of a shootdown is taking the interrupt, not the
    /// individual invalidations, so a range operation batches all its
    /// page flushes onto a single IPI per target.
    FlushTlbMulti(Arc<[FlushScope]>),
    /// A clock tick (used by the deferred shootdown strategy).
    Timer,
}

/// One inter-processor interrupt, possibly carrying an acknowledgement
/// latch the sender is waiting on.
#[derive(Debug, Clone)]
pub struct Ipi {
    /// The request.
    pub kind: IpiKind,
    /// Acknowledgement latch, decremented by the target after handling.
    pub ack: Option<Arc<AckLatch>>,
}

/// A countdown latch: the sender waits until every target acknowledges.
#[derive(Debug)]
pub struct AckLatch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl AckLatch {
    /// A latch expecting `n` acknowledgements.
    pub fn new(n: usize) -> Arc<AckLatch> {
        Arc::new(AckLatch {
            remaining: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    /// Acknowledge once.
    pub fn ack(&self) {
        let mut g = self.remaining.lock();
        *g = g.saturating_sub(1);
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    /// Wait until all acknowledgements arrive or `timeout` elapses.
    /// Returns `true` if fully acknowledged.
    pub fn wait(&self, timeout: Duration) -> bool {
        let mut g = self.remaining.lock();
        if *g == 0 {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        while *g > 0 {
            if self.cv.wait_until(&mut g, deadline).timed_out() {
                return *g == 0;
            }
        }
        true
    }

    /// Remaining unacknowledged count.
    pub fn remaining(&self) -> usize {
        *self.remaining.lock()
    }
}

/// The interrupt fabric connecting the CPUs.
#[derive(Debug)]
pub struct InterruptBus {
    queues: Vec<Mutex<VecDeque<Ipi>>>,
}

impl InterruptBus {
    /// A bus for `n_cpus` processors.
    pub fn new(n_cpus: usize) -> InterruptBus {
        InterruptBus {
            queues: (0..n_cpus).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Number of CPUs on the bus.
    pub fn n_cpus(&self) -> usize {
        self.queues.len()
    }

    /// Post an IPI to `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn send(&self, cpu: usize, ipi: Ipi) {
        self.queues[cpu].lock().push_back(ipi);
    }

    /// Post an IPI to every CPU except `sender`.
    pub fn broadcast_except(&self, sender: usize, ipi: &Ipi) {
        for (i, q) in self.queues.iter().enumerate() {
            if i != sender {
                q.lock().push_back(ipi.clone());
            }
        }
    }

    /// Take all pending IPIs for `cpu` (the target's poll).
    pub fn drain(&self, cpu: usize) -> Vec<Ipi> {
        let mut q = self.queues[cpu].lock();
        q.drain(..).collect()
    }

    /// True if `cpu` has pending interrupts (cheap check before drain).
    pub fn has_pending(&self, cpu: usize) -> bool {
        !self.queues[cpu].lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_drain() {
        let bus = InterruptBus::new(2);
        bus.send(
            1,
            Ipi {
                kind: IpiKind::Timer,
                ack: None,
            },
        );
        assert!(!bus.has_pending(0));
        assert!(bus.has_pending(1));
        let got = bus.drain(1);
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].kind, IpiKind::Timer));
        assert!(!bus.has_pending(1));
    }

    #[test]
    fn broadcast_skips_sender() {
        let bus = InterruptBus::new(3);
        let ipi = Ipi {
            kind: IpiKind::FlushTlb(FlushScope::All),
            ack: None,
        };
        bus.broadcast_except(1, &ipi);
        assert!(bus.has_pending(0));
        assert!(!bus.has_pending(1));
        assert!(bus.has_pending(2));
    }

    #[test]
    fn ack_latch_counts_down() {
        let latch = AckLatch::new(2);
        assert!(!latch.wait(Duration::from_millis(1)));
        latch.ack();
        assert_eq!(latch.remaining(), 1);
        latch.ack();
        assert!(latch.wait(Duration::from_millis(1)));
        // Extra acks do not underflow.
        latch.ack();
        assert_eq!(latch.remaining(), 0);
    }

    #[test]
    fn ack_latch_cross_thread() {
        let latch = AckLatch::new(1);
        let l2 = latch.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            l2.ack();
        });
        assert!(latch.wait(Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn zero_latch_is_immediately_done() {
        let latch = AckLatch::new(0);
        assert!(latch.wait(Duration::from_millis(0)));
    }
}
