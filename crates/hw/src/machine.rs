//! The simulated machine: CPUs + physical memory + MMU + interrupt bus.
//!
//! A [`Machine`] is shared (`Arc`) between the kernel (the `mach-vm`
//! crate), the machine-dependent pmap modules, and the threads driving the
//! simulated CPUs. A thread *binds* to a CPU with [`Machine::bind_cpu`];
//! memory accesses and cost charges then flow to that CPU.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::addr::{Access, Fault, PAddr, VAddr};
use crate::arch::{self, ArchGlobal, ArchKind};
use crate::bus::{AckLatch, InterruptBus, Ipi, IpiKind};
use crate::cost::{Clock, CostModel, DiskModel};
use crate::cpu::Cpu;
use crate::phys::{FrameAlloc, PhysMem};
use crate::tlb::{FlushScope, TlbLookup};

/// Bytes reserved at the bottom of physical memory for the boot image.
pub const BOOT_RESERVED: u64 = 64 * 1024;

/// Static description of a machine configuration.
///
/// The presets reproduce the machines of the paper's Tables 7-1 and 7-2.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Marketing name ("VAX 8650", "SUN 3/160", ...).
    pub name: &'static str,
    /// MMU architecture.
    pub kind: ArchKind,
    /// Clock rate used to convert cycles to time.
    pub mhz: u64,
    /// Physical memory size in bytes.
    pub mem_bytes: u64,
    /// Number of processors.
    pub n_cpus: usize,
    /// TLB entries per CPU.
    pub tlb_entries: usize,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Disk latency model.
    pub disk: DiskModel,
    /// Physical address holes (SUN 3 display memory).
    pub holes: Vec<Range<u64>>,
}

impl MachineModel {
    /// DEC MicroVAX II: the paper's `uVAX II` rows.
    pub fn micro_vax_ii() -> MachineModel {
        MachineModel {
            name: "uVAX II",
            kind: ArchKind::Vax,
            mhz: 5,
            mem_bytes: 16 << 20,
            n_cpus: 1,
            tlb_entries: 64,
            cost: CostModel::standard(),
            disk: DiskModel::standard(),
            holes: Vec::new(),
        }
    }

    /// DEC VAX 8200 (the file-reading rows of Table 7-1).
    pub fn vax_8200() -> MachineModel {
        MachineModel {
            name: "VAX 8200",
            mhz: 5,
            ..MachineModel::micro_vax_ii()
        }
    }

    /// DEC VAX 8650 with 36 MB, as in Table 7-2.
    pub fn vax_8650() -> MachineModel {
        MachineModel {
            name: "VAX 8650",
            mhz: 18,
            mem_bytes: 36 << 20,
            ..MachineModel::micro_vax_ii()
        }
    }

    /// The four-processor VAX 11/784 Mach was first built on.
    pub fn vax_11_784() -> MachineModel {
        MachineModel {
            name: "VAX 11/784",
            mhz: 5,
            n_cpus: 4,
            mem_bytes: 32 << 20,
            ..MachineModel::micro_vax_ii()
        }
    }

    /// IBM RT PC.
    pub fn rt_pc() -> MachineModel {
        MachineModel {
            name: "RT PC",
            kind: ArchKind::Romp,
            mhz: 6,
            mem_bytes: 16 << 20,
            n_cpus: 1,
            tlb_entries: 64,
            cost: CostModel::standard(),
            disk: DiskModel::standard(),
            holes: Vec::new(),
        }
    }

    /// SUN 3/160, with a display-memory hole high in physical memory.
    pub fn sun_3_160() -> MachineModel {
        let mem = 16u64 << 20;
        MachineModel {
            name: "SUN 3/160",
            kind: ArchKind::Sun3,
            mhz: 16,
            mem_bytes: mem,
            n_cpus: 1,
            tlb_entries: 64,
            cost: CostModel::standard(),
            disk: DiskModel::standard(),
            // 1 MB of display memory below the top of physical space.
            holes: vec![(mem - (2 << 20))..(mem - (1 << 20))],
        }
    }

    /// Encore MultiMax with `n_cpus` NS32032/NS32082 processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is zero.
    pub fn multimax(n_cpus: usize) -> MachineModel {
        assert!(n_cpus > 0);
        MachineModel {
            name: "Encore MultiMax",
            kind: ArchKind::Ns32082,
            mhz: 10,
            mem_bytes: 32 << 20, // the NS32082's physical limit
            n_cpus,
            tlb_entries: 64,
            cost: CostModel::standard(),
            disk: DiskModel::standard(),
            holes: Vec::new(),
        }
    }

    /// The TLB-only experimental machine of the paper's §5 footnote (an
    /// IBM RP3-style simulator: software-refilled TLB, no tables).
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is zero.
    pub fn rp3(n_cpus: usize) -> MachineModel {
        assert!(n_cpus > 0);
        MachineModel {
            name: "IBM RP3 (sim)",
            kind: ArchKind::TlbSoft,
            mhz: 12,
            mem_bytes: 64 << 20,
            n_cpus,
            tlb_entries: 128,
            cost: CostModel::standard(),
            disk: DiskModel::standard(),
            holes: Vec::new(),
        }
    }

    /// Sequent Balance with `n_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is zero.
    pub fn balance(n_cpus: usize) -> MachineModel {
        MachineModel {
            name: "Sequent Balance",
            ..MachineModel::multimax(n_cpus)
        }
    }

    /// Hardware page size for this model's architecture.
    pub fn hw_page_size(&self) -> u64 {
        self.kind.hw_page_size()
    }
}

thread_local! {
    static BOUND_CPU: Cell<usize> = const { Cell::new(0) };
}

/// The CPU id the calling thread is bound to (0 if it never bound one),
/// without needing a [`Machine`] reference. Per-CPU data structures in
/// higher layers (free-list slots, PRNG streams) use this as their slot
/// index; callers must still clamp against their own slot count, since
/// the raw binding is not bounded by any particular machine's CPU count.
pub fn bound_cpu() -> usize {
    BOUND_CPU.with(|b| b.get())
}

/// RAII guard binding the current thread to a CPU (see
/// [`Machine::bind_cpu`]). Dropping restores the previous binding and
/// active flag.
#[derive(Debug)]
pub struct CpuBinding<'m> {
    machine: &'m Machine,
    cpu: usize,
    prev: usize,
    prev_active: bool,
    /// This binding took the CPU's thread-ownership (outermost binding on
    /// this thread); dropping it releases the CPU to other threads.
    acquired: bool,
}

impl Drop for CpuBinding<'_> {
    fn drop(&mut self) {
        let still_bound_here = self.prev == self.cpu;
        self.machine.cpus[self.cpu].set_active(self.prev_active && still_bound_here);
        if !still_bound_here {
            self.machine.cpus[self.cpu].set_active(false);
        }
        if self.acquired {
            self.machine.cpus[self.cpu].set_active(false);
            *self.machine.cpus[self.cpu].owner.lock() = None;
        }
        BOUND_CPU.with(|b| b.set(self.prev));
    }
}

/// RAII marker from [`Machine::kernel_block`]: the bound CPU is parked
/// deep in the kernel (sleeping on a busy page, waiting out a pager) and
/// cannot be mid-access through its TLB. While held, the CPU reports
/// inactive, so shootdowns flush its TLB directly instead of sending an
/// IPI that can only time out — a sleeping thread services no interrupts.
#[derive(Debug)]
pub struct KernelBlock<'m> {
    cpu: Option<&'m Cpu>,
}

impl Drop for KernelBlock<'_> {
    fn drop(&mut self) {
        if let Some(cpu) = self.cpu {
            // Everything flushed directly while we slept already hit the
            // TLB; rearming just restores shootdown-by-IPI.
            cpu.set_active(true);
        }
    }
}

/// Counters the machine keeps about cross-processor operations.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// IPIs sent.
    pub ipis_sent: AtomicU64,
    /// IPIs handled.
    pub ipis_handled: AtomicU64,
    /// Shootdown waits that timed out and fell back to a direct flush.
    pub shootdown_timeouts: AtomicU64,
}

/// A complete simulated machine.
#[derive(Debug)]
pub struct Machine {
    model: MachineModel,
    phys: PhysMem,
    frames: FrameAlloc,
    bus: InterruptBus,
    cpus: Vec<Cpu>,
    global: ArchGlobal,
    /// Cross-CPU statistics.
    pub stats: MachineStats,
}

impl Machine {
    /// Boot a machine of the given model.
    ///
    /// Reserves [`BOOT_RESERVED`] bytes (plus the ROMP's IPT/HAT) before
    /// handing the rest to the frame allocator.
    ///
    /// # Panics
    ///
    /// Panics if the model is internally inconsistent (e.g. more physical
    /// memory than the architecture can address).
    pub fn boot(model: MachineModel) -> Arc<Machine> {
        if model.kind == ArchKind::Ns32082 {
            assert!(
                model.mem_bytes <= arch::ns32082::PA_LIMIT,
                "NS32082 can address at most 32 MB of physical memory"
            );
        }
        let phys = PhysMem::new(model.mem_bytes, model.holes.clone());
        let hw_page = model.hw_page_size();
        let mut reserved = BOOT_RESERVED;
        let global = match model.kind {
            ArchKind::Vax => ArchGlobal::Vax,
            ArchKind::Romp => {
                let n_frames = model.mem_bytes / hw_page;
                let layout = arch::romp::init_tables(&phys, PAddr(reserved), n_frames);
                reserved += layout.table_bytes();
                ArchGlobal::Romp(layout)
            }
            ArchKind::Sun3 => ArchGlobal::Sun3(parking_lot::Mutex::new(arch::sun3::Sun3Mmu::new())),
            ArchKind::Ns32082 => ArchGlobal::Ns32082(arch::ns32082::NsGlobal::with_bug()),
            ArchKind::TlbSoft => {
                ArchGlobal::TlbSoft(parking_lot::Mutex::new(arch::tlbsoft::SoftTables::default()))
            }
        };
        let frames = FrameAlloc::new(&phys, hw_page, reserved);
        let cpus = (0..model.n_cpus)
            .map(|i| Cpu::new(i, model.kind, model.tlb_entries))
            .collect();
        let bus = InterruptBus::new(model.n_cpus);
        Arc::new(Machine {
            model,
            phys,
            frames,
            bus,
            cpus,
            global,
            stats: MachineStats::default(),
        })
    }

    /// The machine's static configuration.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The MMU architecture.
    pub fn kind(&self) -> ArchKind {
        self.model.kind
    }

    /// Hardware page size in bytes.
    pub fn hw_page_size(&self) -> u64 {
        self.model.hw_page_size()
    }

    /// The physical memory (pmap modules write tables through this).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// The boot-time frame allocator.
    pub fn frames(&self) -> &FrameAlloc {
        &self.frames
    }

    /// Architecture-global MMU state.
    pub fn arch_global(&self) -> &ArchGlobal {
        &self.global
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.model.cost
    }

    /// The disk model in force.
    pub fn disk(&self) -> &DiskModel {
        &self.model.disk
    }

    /// Number of CPUs.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// CPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cpu(&self, i: usize) -> &Cpu {
        &self.cpus[i]
    }

    /// Bind the calling thread to CPU `id` (RAII; restores on drop) and
    /// mark the CPU active.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn bind_cpu(&self, id: usize) -> CpuBinding<'_> {
        assert!(id < self.cpus.len(), "no such CPU {id}");
        // A CPU executes one instruction stream: binding it from a second
        // host thread would silently interleave two tasks' MMU registers.
        // Make over-subscription a loud error instead of a livelock.
        let acquired = {
            let me = std::thread::current().id();
            let mut owner = self.cpus[id].owner.lock();
            match *owner {
                Some(t) if t != me => panic!(
                    "CPU {id} is already driven by another thread; simulated \
                     CPUs cannot be time-shared between host threads (use \
                     one CPU per concurrent thread)"
                ),
                Some(_) => false,
                None => {
                    *owner = Some(me);
                    true
                }
            }
        };
        let prev = BOUND_CPU.with(|b| b.replace(id));
        let prev_active = self.cpus[prev.min(self.cpus.len() - 1)].is_active();
        self.cpus[id].set_active(true);
        CpuBinding {
            machine: self,
            cpu: id,
            prev,
            prev_active,
            acquired,
        }
    }

    /// The CPU the calling thread is bound to (0 if never bound).
    pub fn current_cpu(&self) -> usize {
        BOUND_CPU.with(|b| b.get()).min(self.cpus.len() - 1)
    }

    /// The bound CPU's clock.
    pub fn clock(&self) -> &Clock {
        &self.cpus[self.current_cpu()].clock
    }

    /// Charge CPU cycles to the bound CPU.
    #[inline]
    pub fn charge(&self, cycles: u64) {
        self.clock().charge(cycles);
    }

    /// Charge I/O wait (elapsed-only) to the bound CPU.
    #[inline]
    pub fn charge_wait_us(&self, us: u64) {
        self.clock().charge_wait_us(us);
    }

    /// The bound CPU's elapsed timeline in cycle units: system cycles
    /// plus charged I/O wait at the model's clock rate. Trace and
    /// profiler stamps read this clock so I/O-bound intervals (pager
    /// RPCs, pageins) have their true width.
    #[inline]
    pub fn elapsed_cycles(&self) -> u64 {
        self.clock().elapsed_cycles(self.model.mhz)
    }

    /// Largest elapsed time across all CPUs, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.cpus
            .iter()
            .map(|c| c.clock.elapsed_us(self.model.mhz))
            .max()
            .unwrap_or(0)
    }

    /// Reset every CPU clock (benchmark hygiene).
    pub fn reset_clocks(&self) {
        for c in &self.cpus {
            c.clock.reset();
        }
    }

    // ------------------------------------------------------------------
    // Interrupts
    // ------------------------------------------------------------------

    /// Handle pending IPIs for CPU `id`.
    pub fn poll_cpu(&self, id: usize) {
        if !self.bus.has_pending(id) {
            return;
        }
        for ipi in self.bus.drain(id) {
            match ipi.kind {
                IpiKind::FlushTlb(scope) => {
                    self.cpus[id].tlb.lock().flush(scope);
                }
                IpiKind::FlushTlbMulti(scopes) => {
                    let mut tlb = self.cpus[id].tlb.lock();
                    for &scope in scopes.iter() {
                        tlb.flush(scope);
                    }
                }
                IpiKind::Timer => {}
            }
            self.cpus[id].clock.charge(self.model.cost.ipi_handle);
            self.stats.ipis_handled.fetch_add(1, Ordering::Relaxed);
            if let Some(ack) = ipi.ack {
                ack.ack();
            }
        }
    }

    /// Handle pending IPIs for the bound CPU.
    pub fn poll(&self) {
        self.poll_cpu(self.current_cpu());
    }

    /// Flush part of the bound CPU's own TLB (free of IPI cost).
    pub fn flush_local(&self, scope: FlushScope) {
        self.cpus[self.current_cpu()].tlb.lock().flush(scope);
    }

    /// Flush part of CPU `id`'s TLB directly — only legal for a quiescent
    /// CPU (models flush-on-next-activate).
    pub fn flush_quiescent(&self, id: usize, scope: FlushScope) {
        self.cpus[id].tlb.lock().flush(scope);
    }

    /// Mark the bound CPU quiescent for the duration of a kernel sleep
    /// (waiting on a busy page or a pager reply). While the returned
    /// guard lives, shootdowns aimed at this CPU flush its TLB directly
    /// rather than interrupting a thread that cannot answer — without
    /// this, every synchronous flush in the system stalls for the full
    /// IPI timeout whenever any sibling CPU is parked in the kernel.
    ///
    /// Legal because the sleeping thread is not mid-access: the access
    /// that led here has already faulted and will restart from the
    /// hardware table walk when the thread resumes. A no-op when the
    /// calling thread does not own a CPU (kernel daemons, tests).
    pub fn kernel_block(&self) -> KernelBlock<'_> {
        let cpu = &self.cpus[self.current_cpu()];
        let owned = *cpu.owner.lock() == Some(std::thread::current().id());
        if owned && cpu.is_active() {
            cpu.set_active(false);
            KernelBlock { cpu: Some(cpu) }
        } else {
            KernelBlock { cpu: None }
        }
    }

    /// Interrupt `targets` so they flush `scope`; optionally wait for all
    /// *active* targets to acknowledge.
    ///
    /// Quiescent targets are flushed directly (nothing can be running
    /// through their TLBs). If an active target fails to acknowledge
    /// within 100 ms (it is blocked inside the kernel, not touching user
    /// memory), the flush is forced and counted in
    /// [`MachineStats::shootdown_timeouts`].
    ///
    /// Returns the number of IPIs actually sent.
    pub fn shootdown(&self, targets: &[usize], scope: FlushScope, wait: bool) -> usize {
        self.shootdown_multi(targets, &[scope], wait)
    }

    /// [`Machine::shootdown`] for several scopes at once: every target
    /// receives a *single* IPI carrying all of them. Range operations use
    /// this to coalesce their per-page flushes — the interrupt, not the
    /// invalidation, is what costs — so a remove or protect of N pages
    /// interrupts each CPU once instead of N times.
    ///
    /// Returns the number of IPIs actually sent.
    pub fn shootdown_multi(&self, targets: &[usize], scopes: &[FlushScope], wait: bool) -> usize {
        if scopes.is_empty() {
            return 0;
        }
        let me = self.current_cpu();
        let mut live = Vec::new();
        for &t in targets {
            if t == me {
                for &scope in scopes {
                    self.flush_local(scope);
                }
            } else if self.cpus[t].is_active() {
                live.push(t);
            } else {
                for &scope in scopes {
                    self.flush_quiescent(t, scope);
                }
            }
        }
        if live.is_empty() {
            return 0;
        }
        let kind = if scopes.len() == 1 {
            IpiKind::FlushTlb(scopes[0])
        } else {
            IpiKind::FlushTlbMulti(scopes.into())
        };
        let ack = if wait {
            Some(AckLatch::new(live.len()))
        } else {
            None
        };
        for &t in &live {
            self.bus.send(
                t,
                Ipi {
                    kind: kind.clone(),
                    ack: ack.clone(),
                },
            );
            self.clock().charge(self.model.cost.ipi_send);
            self.stats.ipis_sent.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(latch) = ack {
            // Keep servicing our *own* incoming IPIs while waiting —
            // real kernels leave interrupts enabled here, and without it
            // concurrent shootdowns deadlock against each other.
            let deadline = std::time::Instant::now() + Duration::from_millis(100);
            loop {
                self.poll_cpu(me);
                if latch.wait(Duration::from_millis(1)) {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    // Forced flush: targets are stalled inside the kernel
                    // and cannot be mid-access through their TLBs.
                    for &t in &live {
                        for &scope in scopes {
                            self.flush_quiescent(t, scope);
                        }
                    }
                    self.stats
                        .shootdown_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        live.len()
    }

    // ------------------------------------------------------------------
    // Memory access (the simulated instruction stream)
    // ------------------------------------------------------------------

    /// Translate `va` for `access` on the bound CPU, filling the TLB.
    ///
    /// # Errors
    ///
    /// The [`Fault`] the MMU would raise; trap overhead is charged.
    pub fn translate(&self, va: VAddr, access: Access) -> Result<PAddr, Fault> {
        let id = self.current_cpu();
        self.poll_cpu(id);
        let cpu = &self.cpus[id];
        let page = self.hw_page_size();
        let cost = &self.model.cost;
        let regs = cpu.regs();
        let (space, vpn) = arch::tlb_key(self.kind(), &regs, va, access).inspect_err(|_f| {
            cpu.clock.charge(cost.trap);
        })?;
        let mut tlb = cpu.tlb.lock();
        match tlb.lookup(space, vpn, access) {
            TlbLookup::Hit {
                pfn,
                needs_dirty_walk: false,
            } => {
                cpu.clock.charge(cost.memref);
                Ok(pfn.base(page) + va.offset_in(page))
            }
            TlbLookup::Hit {
                needs_dirty_walk: true,
                ..
            } => {
                // First write through the entry: re-walk to set the modify
                // bit in the in-memory table. A stale entry may fault here.
                match arch::walk(self.kind(), &self.phys, &self.global, &regs, va, access) {
                    Ok(ok) => {
                        cpu.clock
                            .charge(cost.memref * ok.memrefs as u64 + cost.memref);
                        tlb.insert(ok.space, ok.vpn, ok.pfn, ok.prot, ok.dirty);
                        Ok(ok.pfn.base(page) + va.offset_in(page))
                    }
                    Err(f) => {
                        tlb.flush(FlushScope::Page { space, vpn });
                        cpu.clock.charge(cost.trap);
                        Err(f)
                    }
                }
            }
            TlbLookup::Denied => {
                // The entry denies the access. Hardware traps immediately;
                // the OS will revalidate and flush. (A stale entry can
                // deny an access the tables now allow — the lazy
                // consistency case of §5.2.)
                tlb.flush(FlushScope::Page { space, vpn });
                cpu.clock.charge(cost.trap);
                drop(tlb);
                // Re-walk so a merely-stale entry does not raise a
                // spurious fault to the machine-independent layer.
                match arch::walk(self.kind(), &self.phys, &self.global, &regs, va, access) {
                    Ok(ok) => {
                        cpu.clock
                            .charge(cost.memref * ok.memrefs as u64 + cost.tlb_fill);
                        let mut tlb = cpu.tlb.lock();
                        tlb.insert(ok.space, ok.vpn, ok.pfn, ok.prot, ok.dirty);
                        Ok(ok.pfn.base(page) + va.offset_in(page))
                    }
                    Err(f) => Err(f),
                }
            }
            TlbLookup::Miss => {
                match arch::walk(self.kind(), &self.phys, &self.global, &regs, va, access) {
                    Ok(ok) => {
                        cpu.clock
                            .charge(cost.memref * ok.memrefs as u64 + cost.tlb_fill);
                        tlb.insert(ok.space, ok.vpn, ok.pfn, ok.prot, ok.dirty);
                        Ok(ok.pfn.base(page) + va.offset_in(page))
                    }
                    Err(f) => {
                        cpu.clock.charge(cost.trap);
                        Err(f)
                    }
                }
            }
        }
    }

    fn access_span(
        &self,
        va: VAddr,
        len: usize,
        access: Access,
        mut f: impl FnMut(PAddr, usize, usize),
    ) -> Result<(), Fault> {
        let page = self.hw_page_size();
        let mut off = 0usize;
        while off < len {
            let cur = va + off as u64;
            let in_page = (page - cur.offset_in(page)) as usize;
            let take = in_page.min(len - off);
            let pa = self.translate(cur, access)?;
            f(pa, off, take);
            self.charge(self.model.cost.memref);
            if take > 16 {
                self.charge(self.model.cost.copy_cycles(take as u64));
            }
            off += take;
        }
        Ok(())
    }

    /// Read `buf.len()` bytes of user memory at `va` on the bound CPU.
    ///
    /// # Errors
    ///
    /// The first [`Fault`] encountered; earlier pages may have been read.
    pub fn load(&self, va: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        let phys = &self.phys;
        let mut out: Vec<(PAddr, usize, usize)> = Vec::new();
        self.access_span(va, buf.len(), Access::Read, |pa, off, take| {
            out.push((pa, off, take));
        })?;
        for (pa, off, take) in out {
            phys.read(pa, &mut buf[off..off + take])
                .expect("translated address is resident");
        }
        Ok(())
    }

    /// Write `buf` to user memory at `va` on the bound CPU.
    ///
    /// # Errors
    ///
    /// The first [`Fault`] encountered; earlier pages may have been
    /// written (stores are restartable at page granularity).
    pub fn store(&self, va: VAddr, buf: &[u8]) -> Result<(), Fault> {
        let phys = &self.phys;
        let mut segs: Vec<(PAddr, usize, usize)> = Vec::new();
        self.access_span(va, buf.len(), Access::Write, |pa, off, take| {
            segs.push((pa, off, take));
        })?;
        for (pa, off, take) in segs {
            phys.write(pa, &buf[off..off + take])
                .expect("translated address is resident");
        }
        Ok(())
    }

    /// Load a `u32` at `va`.
    ///
    /// # Errors
    ///
    /// Propagates translation faults.
    pub fn load_u32(&self, va: VAddr) -> Result<u32, Fault> {
        let mut b = [0u8; 4];
        self.load(va, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Store a `u32` at `va`.
    ///
    /// # Errors
    ///
    /// Propagates translation faults.
    pub fn store_u32(&self, va: VAddr, v: u32) -> Result<(), Fault> {
        self.store(va, &v.to_le_bytes())
    }

    /// A read-modify-write cycle on the `u32` at `va` — the operation the
    /// NS32082 erratum corrupts: if the *write* half faults, the chip
    /// reports a **read** fault (paper §5.1).
    ///
    /// # Errors
    ///
    /// Propagates faults; on a buggy NS32082, a write-protection fault is
    /// reported with `access == Read`.
    pub fn rmw_u32(&self, va: VAddr, f: impl FnOnce(u32) -> u32) -> Result<u32, Fault> {
        let pa_r = self.translate(va, Access::Read)?;
        let old = self.phys.read_u32(pa_r).expect("resident");
        self.charge(self.model.cost.memref);
        match self.translate(va, Access::Write) {
            Ok(pa_w) => {
                self.phys.write_u32(pa_w, f(old)).expect("resident");
                self.charge(self.model.cost.memref);
                Ok(old)
            }
            Err(mut fault) => {
                let buggy = matches!(
                    &self.global,
                    ArchGlobal::Ns32082(g) if g.rmw_bug()
                );
                if buggy && fault.access == Access::Write {
                    fault.access = Access::Read;
                }
                Err(fault)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_each_model() {
        for m in [
            MachineModel::micro_vax_ii(),
            MachineModel::vax_8200(),
            MachineModel::vax_8650(),
            MachineModel::vax_11_784(),
            MachineModel::rt_pc(),
            MachineModel::sun_3_160(),
            MachineModel::multimax(4),
            MachineModel::balance(2),
            MachineModel::rp3(4),
        ] {
            let name = m.name;
            let n = m.n_cpus;
            let machine = Machine::boot(m);
            assert_eq!(machine.n_cpus(), n, "{name}");
            assert!(machine.frames().free_count() > 100, "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "32 MB")]
    fn ns32082_physical_limit_enforced() {
        let mut m = MachineModel::multimax(1);
        m.mem_bytes = 64 << 20;
        let _ = Machine::boot(m);
    }

    #[test]
    fn romp_tables_reserved() {
        let m = Machine::boot(MachineModel::rt_pc());
        let ArchGlobal::Romp(layout) = m.arch_global() else {
            panic!("expected ROMP global state");
        };
        assert_eq!(layout.n_frames, (16 << 20) / 2048);
        // The frame allocator must not hand out table frames.
        let table_end = layout.hat_base.0 + 4 * layout.buckets;
        let f = m.frames().alloc().unwrap();
        assert!(f.base(2048).0 >= table_end);
    }

    #[test]
    fn binding_is_scoped() {
        let m = Machine::boot(MachineModel::vax_11_784());
        assert_eq!(m.current_cpu(), 0);
        {
            let _b = m.bind_cpu(2);
            assert_eq!(m.current_cpu(), 2);
            assert!(m.cpu(2).is_active());
            {
                let _b2 = m.bind_cpu(3);
                assert_eq!(m.current_cpu(), 3);
            }
            assert_eq!(m.current_cpu(), 2);
        }
        assert_eq!(m.current_cpu(), 0);
        assert!(!m.cpu(2).is_active());
    }

    #[test]
    fn unmapped_access_faults_and_charges_trap() {
        let m = Machine::boot(MachineModel::micro_vax_ii());
        let _b = m.bind_cpu(0);
        let before = m.clock().system_cycles();
        let err = m.load_u32(VAddr(0x1000)).unwrap_err();
        assert_eq!(err.code, crate::addr::FaultCode::Length); // empty P0
        assert!(m.clock().system_cycles() > before);
    }

    #[test]
    fn shootdown_to_quiescent_cpu_flushes_directly() {
        let m = Machine::boot(MachineModel::vax_11_784());
        let _b = m.bind_cpu(0);
        // Install a fake TLB entry on CPU 1 (quiescent).
        m.cpu(1)
            .tlb
            .lock()
            .insert(0, 5, crate::addr::Pfn(1), crate::addr::HwProt::READ, false);
        let sent = m.shootdown(&[1], FlushScope::All, true);
        assert_eq!(sent, 0, "no IPI needed for a quiescent CPU");
        assert_eq!(m.cpu(1).tlb.lock().iter().count(), 0);
    }

    #[test]
    fn shootdown_to_active_cpu_uses_ipi() {
        let m = Machine::boot(MachineModel::vax_11_784());
        m.cpu(1).set_active(true);
        let m2 = Arc::clone(&m);
        let poller = std::thread::spawn(move || {
            let _b = m2.bind_cpu(1);
            // Poll until the flush arrives.
            for _ in 0..10_000 {
                m2.poll();
                if m2.stats.ipis_handled.load(Ordering::Relaxed) > 0 {
                    return true;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            false
        });
        let _b = m.bind_cpu(0);
        let sent = m.shootdown(&[1], FlushScope::All, true);
        assert_eq!(sent, 1);
        assert!(poller.join().unwrap());
        assert_eq!(m.stats.shootdown_timeouts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shootdown_timeout_forces_flush() {
        let m = Machine::boot(MachineModel::vax_11_784());
        // CPU 1 claims to be active but nobody polls it.
        m.cpu(1).set_active(true);
        let _b = m.bind_cpu(0);
        let sent = m.shootdown(&[1], FlushScope::All, true);
        assert_eq!(sent, 1);
        assert_eq!(m.stats.shootdown_timeouts.load(Ordering::Relaxed), 1);
    }
}
