//! A per-CPU software-simulated translation lookaside buffer.
//!
//! The defining property for the paper's multiprocessor discussion (§5.2)
//! is what this TLB does **not** have: any way for one CPU to flush another
//! CPU's entries. Consistency is software's problem, solved by the
//! machine-dependent layer's shootdown strategies.
//!
//! Entries are tagged with a *space* identifier whose meaning is
//! per-architecture (SUN 3 context number, ROMP segment id, or 0 for
//! untagged TLBs that flush on every address-space switch).

use crate::addr::{Access, HwProt, Pfn};

/// One TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Architecture-defined address-space tag.
    pub space: u32,
    /// Virtual page number (in hardware pages).
    pub vpn: u64,
    /// Physical frame.
    pub pfn: Pfn,
    /// Hardware permissions.
    pub prot: HwProt,
    /// True once a write has been performed through this entry (the modify
    /// bit is already set in the in-memory table).
    pub dirty: bool,
}

/// What to remove from a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// Everything.
    All,
    /// Every entry of one address space.
    Space(u32),
    /// One page of one address space.
    Page {
        /// Address-space tag.
        space: u32,
        /// Virtual page number.
        vpn: u64,
    },
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// No matching entry.
    Miss,
    /// Matching entry permits the access; translation proceeds.
    Hit {
        /// The translated frame.
        pfn: Pfn,
        /// True if this is the first write through the entry, so the walker
        /// must be re-run to set the modify bit in the in-memory table.
        needs_dirty_walk: bool,
    },
    /// Matching entry forbids the access (protection fault, no walk).
    Denied,
}

/// Running statistics, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries removed by flush operations.
    pub flushed: u64,
}

/// A fully-associative, FIFO-replacement TLB.
///
/// # Examples
///
/// ```
/// use mach_hw::tlb::{Tlb, TlbLookup};
/// use mach_hw::addr::{Access, HwProt, Pfn};
/// let mut tlb = Tlb::new(64);
/// assert_eq!(tlb.lookup(0, 5, Access::Read), TlbLookup::Miss);
/// tlb.insert(0, 5, Pfn(9), HwProt::READ, false);
/// assert!(matches!(tlb.lookup(0, 5, Access::Read), TlbLookup::Hit { .. }));
/// ```
#[derive(Debug)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    next_victim: usize,
    stats: TlbStats,
}

impl Tlb {
    /// A TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "a TLB needs at least one entry");
        Tlb {
            entries: vec![None; capacity],
            next_victim: 0,
            stats: TlbStats::default(),
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Look up `(space, vpn)` for `access`.
    pub fn lookup(&mut self, space: u32, vpn: u64, access: Access) -> TlbLookup {
        for e in self.entries.iter().flatten() {
            if e.space == space && e.vpn == vpn {
                if !e.prot.allows(access) {
                    // A protection miss counts as a hit for stats: the
                    // hardware found the entry.
                    self.stats.hits += 1;
                    return TlbLookup::Denied;
                }
                self.stats.hits += 1;
                return TlbLookup::Hit {
                    pfn: e.pfn,
                    needs_dirty_walk: access.is_write() && !e.dirty,
                };
            }
        }
        self.stats.misses += 1;
        TlbLookup::Miss
    }

    /// Insert (or replace) the entry for `(space, vpn)`.
    pub fn insert(&mut self, space: u32, vpn: u64, pfn: Pfn, prot: HwProt, dirty: bool) {
        let new = TlbEntry {
            space,
            vpn,
            pfn,
            prot,
            dirty,
        };
        // Replace an existing mapping of the same page if present.
        for slot in self.entries.iter_mut() {
            if let Some(e) = slot {
                if e.space == space && e.vpn == vpn {
                    *slot = Some(new);
                    return;
                }
            }
        }
        // Otherwise take a free slot, else FIFO-evict.
        if let Some(slot) = self.entries.iter_mut().find(|s| s.is_none()) {
            *slot = Some(new);
            return;
        }
        let v = self.next_victim;
        self.entries[v] = Some(new);
        self.next_victim = (v + 1) % self.entries.len();
    }

    /// Mark the entry for `(space, vpn)` dirty (after a dirty walk).
    pub fn set_dirty(&mut self, space: u32, vpn: u64) {
        for e in self.entries.iter_mut().flatten() {
            if e.space == space && e.vpn == vpn {
                e.dirty = true;
            }
        }
    }

    /// Remove entries matching `scope`, returning how many were removed.
    pub fn flush(&mut self, scope: FlushScope) -> usize {
        let mut n = 0;
        for slot in self.entries.iter_mut() {
            let matches = match (*slot, scope) {
                (None, _) => false,
                (Some(_), FlushScope::All) => true,
                (Some(e), FlushScope::Space(s)) => e.space == s,
                (Some(e), FlushScope::Page { space, vpn }) => e.space == space && e.vpn == vpn,
            };
            if matches {
                *slot = None;
                n += 1;
            }
        }
        self.stats.flushed += n as u64;
        n
    }

    /// Iterate over live entries (for tests and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::HwProt;

    fn rw() -> HwProt {
        HwProt::READ | HwProt::WRITE
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(1, 10, Access::Read), TlbLookup::Miss);
        t.insert(1, 10, Pfn(3), rw(), false);
        match t.lookup(1, 10, Access::Read) {
            TlbLookup::Hit {
                pfn,
                needs_dirty_walk,
            } => {
                assert_eq!(pfn, Pfn(3));
                assert!(!needs_dirty_walk);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn space_tags_disambiguate() {
        let mut t = Tlb::new(4);
        t.insert(1, 10, Pfn(3), rw(), false);
        t.insert(2, 10, Pfn(4), rw(), false);
        assert!(matches!(
            t.lookup(1, 10, Access::Read),
            TlbLookup::Hit { pfn: Pfn(3), .. }
        ));
        assert!(matches!(
            t.lookup(2, 10, Access::Read),
            TlbLookup::Hit { pfn: Pfn(4), .. }
        ));
    }

    #[test]
    fn first_write_needs_dirty_walk() {
        let mut t = Tlb::new(4);
        t.insert(0, 7, Pfn(1), rw(), false);
        assert!(matches!(
            t.lookup(0, 7, Access::Write),
            TlbLookup::Hit {
                needs_dirty_walk: true,
                ..
            }
        ));
        t.set_dirty(0, 7);
        assert!(matches!(
            t.lookup(0, 7, Access::Write),
            TlbLookup::Hit {
                needs_dirty_walk: false,
                ..
            }
        ));
    }

    #[test]
    fn read_only_entry_denies_write() {
        let mut t = Tlb::new(4);
        t.insert(0, 7, Pfn(1), HwProt::READ, false);
        assert_eq!(t.lookup(0, 7, Access::Write), TlbLookup::Denied);
        assert!(matches!(
            t.lookup(0, 7, Access::Read),
            TlbLookup::Hit { .. }
        ));
    }

    #[test]
    fn insert_replaces_same_page() {
        let mut t = Tlb::new(2);
        t.insert(0, 7, Pfn(1), HwProt::READ, false);
        t.insert(0, 7, Pfn(2), rw(), true);
        assert_eq!(t.iter().count(), 1);
        assert!(matches!(
            t.lookup(0, 7, Access::Write),
            TlbLookup::Hit {
                pfn: Pfn(2),
                needs_dirty_walk: false
            }
        ));
    }

    #[test]
    fn fifo_eviction() {
        let mut t = Tlb::new(2);
        t.insert(0, 1, Pfn(1), rw(), false);
        t.insert(0, 2, Pfn(2), rw(), false);
        t.insert(0, 3, Pfn(3), rw(), false); // evicts slot 0 (vpn 1)
        assert_eq!(t.lookup(0, 1, Access::Read), TlbLookup::Miss);
        assert!(matches!(
            t.lookup(0, 2, Access::Read),
            TlbLookup::Hit { .. }
        ));
        assert!(matches!(
            t.lookup(0, 3, Access::Read),
            TlbLookup::Hit { .. }
        ));
    }

    #[test]
    fn flush_scopes() {
        let mut t = Tlb::new(8);
        t.insert(1, 1, Pfn(1), rw(), false);
        t.insert(1, 2, Pfn(2), rw(), false);
        t.insert(2, 1, Pfn(3), rw(), false);
        assert_eq!(t.flush(FlushScope::Page { space: 1, vpn: 2 }), 1);
        assert_eq!(t.flush(FlushScope::Space(1)), 1);
        assert!(matches!(
            t.lookup(2, 1, Access::Read),
            TlbLookup::Hit { .. }
        ));
        assert_eq!(t.flush(FlushScope::All), 1);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.stats().flushed, 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
