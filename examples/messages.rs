//! Memory in messages (paper §2): "large amounts of data including whole
//! files and even whole address spaces to be sent in a single message
//! with the efficiency of simple memory remapping."
//!
//! A client task builds an 8 MB dataset and ships it to a server task
//! through a port. The kernel moves **map entries, not bytes** — the
//! statistics prove no page was copied until someone wrote.
//!
//! ```text
//! cargo run --example messages
//! ```

use mach_hw::machine::{Machine, MachineModel};
use mach_ipc::{Message, Port};
use mach_vm::kernel::Kernel;
use std::sync::Arc;

fn main() {
    let machine = Machine::boot(MachineModel::vax_8650());
    let kernel = Kernel::boot(&machine);
    let ps = kernel.page_size();

    let (tx, rx) = Port::allocate("dataset-service", 4);

    // The server: receives the dataset, checksums it, reports back.
    let k2 = Arc::clone(&kernel);
    let server = std::thread::spawn(move || {
        let me = k2.create_task();
        let msg = rx.receive();
        let reply_to = msg.port(0).clone();
        let (addr, size) = k2.receive_region(&me, &msg, 2).unwrap();
        println!(
            "[server] landed {} MB at {addr:#x} — map manipulation only",
            size >> 20
        );
        let sum = me.user(0, |u| {
            let mut s = 0u64;
            let mut a = addr;
            while a < addr + size {
                s += u.read_u32(a).unwrap() as u64;
                a += 4096;
            }
            s
        });
        // The server scribbles on its copy; the client must not see it.
        me.user(0, |u| u.write_u32(addr, 0xDEAD).unwrap());
        reply_to
            .send(Message::new(1).with(mach_ipc::MsgField::U64(sum)))
            .unwrap();
    });

    // The client: builds the dataset and sends it whole.
    let client = kernel.create_task();
    let size = 8 << 20;
    let src = client
        .map()
        .allocate(kernel.ctx(), None, size, true)
        .unwrap();
    client.user(0, |u| {
        let mut a = src;
        while a < src + size {
            u.write_u32(a, 7).unwrap();
            a += ps;
        }
    });
    println!(
        "[client] built {} MB ({} pages resident)",
        size >> 20,
        kernel.statistics().active_count
    );

    let cow_before = kernel.statistics().cow_faults;
    let (reply_tx, reply_rx) = Port::allocate("reply", 1);
    let msg = kernel
        .attach_region(
            &client,
            src,
            size,
            Message::new(0).with(mach_ipc::MsgField::Port(reply_tx)),
        )
        .unwrap();
    tx.send(msg).unwrap();
    println!("[client] sent the whole region in one message");

    let reply = reply_rx.receive();
    let expected = 7u64 * (size / ps) * (ps / 4096);
    assert_eq!(reply.u64(0), expected, "server checksummed the right bytes");
    println!("[client] server's checksum: {} ✓", reply.u64(0));

    // Isolation: the server's scribble never reached the client.
    client.user(0, |u| assert_eq!(u.read_u32(src).unwrap(), 7));
    server.join().unwrap();

    let s = kernel.statistics();
    println!(
        "copy-on-write pushes during the whole exchange: {} (transfer itself: 0; the server's one write: ≥1)",
        s.cow_faults - cow_before
    );
    println!(
        "faults {} | zero fills {} | collapses+bypasses {}",
        s.faults,
        s.zero_fill_count,
        s.collapses + s.bypasses
    );
}
