//! Trace timeline: reconstruct what the VM system did — and how long each
//! fault took — from the kernel-wide event ring alone.
//!
//! Tracing is enabled right after boot, a workload exercises every fault
//! resolution (zero-fill, COW push, resident hit, pagein from an external
//! pager) plus pageout under pressure, and the analyzer then rebuilds the
//! fault-latency histogram, the pager request/reply interleaving of the
//! paper's Tables 3-1/3-2, and per-task/per-object attribution — checking
//! at the end that the event stream reproduces the same totals as
//! `vm_statistics` (Table 2-1).
//!
//! ```text
//! cargo run --example trace_timeline
//! ```

use std::collections::BTreeMap;
use std::collections::HashMap;

use mach_hw::machine::{Machine, MachineModel};
use mach_ipc::{Port, SendRight};
use mach_vm::kernel::Kernel;
use mach_vm::trace::{FaultResolution, TraceEvent};
use mach_vm::{serve_pager, UserPager};

/// A user-state pager whose pages are generated on demand and which
/// journals everything the kernel pages out (cf. `external_pager.rs`).
struct GeneratedObject {
    written: HashMap<u64, Vec<u8>>,
}

impl UserPager for GeneratedObject {
    fn init(&mut self, _object_id: u64, _request_port: &SendRight) {}

    fn read(&mut self, offset: u64, length: u64) -> Option<Vec<u8>> {
        if let Some(d) = self.written.get(&offset) {
            return Some(d.clone());
        }
        Some((0..length).map(|i| ((offset + i) % 251) as u8).collect())
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        self.written.insert(offset, data.to_vec());
    }
}

fn event_name(e: &TraceEvent) -> String {
    match e {
        TraceEvent::PagerRequest { msg, pager, .. } => {
            format!("kernel→pager[{pager}] {msg:?}")
        }
        TraceEvent::PagerReply { msg, pager, .. } => {
            format!("pager[{pager}]→kernel {msg:?}")
        }
        other => format!("{other:?}"),
    }
}

fn main() {
    // A small machine so memory pressure (and therefore pageout) is easy
    // to create.
    let mut model = MachineModel::micro_vax_ii();
    model.mem_bytes = 2 << 20;
    let machine = Machine::boot(model);
    let kernel = Kernel::boot(&machine);
    let ps = kernel.page_size();

    // Rings sized so nothing wraps: the log must account for *every*
    // event if its totals are to match vm_statistics exactly.
    kernel.enable_tracing(65_536);

    // --- Workload -------------------------------------------------------
    // 1. Zero-fill faults + a COW fork (paper §3.4).
    let task = kernel.create_task();
    let anon = task
        .map()
        .allocate(kernel.ctx(), None, 16 * ps, true)
        .unwrap();
    task.user(0, |u| u.dirty_range(anon, 16 * ps).unwrap());
    let child = task.fork();
    child.user(0, |u| {
        for p in 0..4u64 {
            u.write_u32(anon + p * ps, 0xC0DE).unwrap();
        }
        // Resident hits: re-touch pages already entered in the pmap is
        // invisible, so read pages the parent made resident but the child
        // has not yet mapped.
        assert_eq!(u.read_u32(anon + 8 * ps).unwrap(), 0x5A5A_5A5A);
    });

    // 2. An external pager: pageins on first touch, pageouts under
    //    pressure, pageins again on refault (paper §3.3).
    let (pager_port, pager_rx) = Port::allocate("trace-timeline-pager", 64);
    let server = std::thread::spawn(move || {
        serve_pager(
            &pager_rx,
            GeneratedObject {
                written: HashMap::new(),
            },
        )
    });
    let size = 64 * ps;
    let paged = kernel
        .allocate_with_pager(&task, None, size, true, pager_port, 0)
        .expect("allocate with pager");
    task.user(0, |u| {
        for p in 0..32u64 {
            u.write_u32(paged + p * ps, 0xBEEF_0000 | p as u32).unwrap();
        }
    });
    let freed = kernel.reclaim(24);
    task.user(0, |u| {
        for p in (0..32u64).step_by(5) {
            assert_eq!(u.read_u32(paged + p * ps).unwrap(), 0xBEEF_0000 | p as u32);
        }
    });

    // --- Analysis -------------------------------------------------------
    let log = kernel.trace_log();
    kernel.disable_tracing();
    let totals = log.totals();
    let stats = kernel.statistics();

    println!(
        "captured {} trace records ({} written)",
        log.len(),
        log.written
    );
    println!("reclaimed {freed} pages under pressure");
    println!();

    // The acceptance check: the event stream alone reproduces the
    // Table 2-1 counters.
    println!(
        "{:<12} {:>12} {:>12}",
        "counter", "from trace", "vm_statistics"
    );
    for (name, t, s) in [
        ("faults", totals.faults, stats.faults),
        ("pageins", totals.pageins, stats.pageins),
        ("pageouts", totals.pageouts, stats.pageouts),
        ("zero fill", totals.zero_fill, stats.zero_fill_count),
        ("cow", totals.cow_faults, stats.cow_faults),
        ("reclaims", totals.reclaims, stats.reclaims),
    ] {
        println!("{name:<12} {t:>12} {s:>12}");
    }
    assert_eq!(totals.faults, stats.faults, "trace faults == vm_statistics");
    assert_eq!(
        totals.pageins, stats.pageins,
        "trace pageins == vm_statistics"
    );
    assert_eq!(
        totals.pageouts, stats.pageouts,
        "trace pageouts == vm_statistics"
    );
    println!();

    // Fault latency, reconstructed by pairing FaultBegin/FaultEnd.
    println!("fault latency (simulated cycles):");
    println!("{}", log.latency_histogram());
    println!();

    let mut by_res: BTreeMap<FaultResolution, Vec<u64>> = BTreeMap::new();
    for p in log.fault_pairs() {
        by_res
            .entry(p.resolution)
            .or_default()
            .push(p.latency_cycles());
    }
    println!("{:<14} {:>6} {:>12}", "resolution", "count", "mean cycles");
    for (res, lat) in &by_res {
        let mean = lat.iter().sum::<u64>() / lat.len() as u64;
        println!("{:<14} {:>6} {:>12}", format!("{res:?}"), lat.len(), mean);
    }
    println!();

    // The pager dialogue: request/reply interleaving per Tables 3-1/3-2.
    let timeline = log.pager_timeline();
    println!("pager dialogue ({} messages, first 12):", timeline.len());
    for r in timeline.iter().take(12) {
        println!(
            "  seq {:>5}  cyc {:>9}  obj {:>2}  off {:>#8x}  {}",
            r.seq,
            r.cycles,
            r.object,
            r.offset,
            event_name(&r.event)
        );
    }
    // Per-pager attribution: every record names the port it crossed, so
    // the dialogue splits cleanly by pager instance.
    for id in log.pager_ids() {
        println!(
            "  pager port {:>3}: {} messages",
            id,
            log.pager_timeline_for(id).len()
        );
    }
    println!();

    // Attribution: the same events rolled up per task and per object.
    println!(
        "{:<8} {:>7} {:>9} {:>5} {:>8} {:>9}",
        "task", "faults", "zero fill", "cow", "pageins", "res. hits"
    );
    for (task_id, r) in kernel.statistics_by_task() {
        if r.faults == 0 {
            continue;
        }
        println!(
            "{:<8} {:>7} {:>9} {:>5} {:>8} {:>9}",
            task_id, r.faults, r.zero_fill, r.cow_faults, r.pageins, r.resident_hits
        );
    }
    println!();
    println!(
        "{:<8} {:>7} {:>8} {:>9}",
        "object", "faults", "pageins", "pageouts"
    );
    for (obj_id, r) in kernel.statistics_by_object() {
        if r.faults + r.pageins + r.pageouts == 0 {
            continue;
        }
        println!(
            "{:<8} {:>7} {:>8} {:>9}",
            obj_id, r.faults, r.pageins, r.pageouts
        );
    }

    drop(child);
    drop(task);
    let _pager = server.join().unwrap();
    println!();
    println!("trace totals reproduced vm_statistics exactly — the ring is a");
    println!("faithful, attributable record of what the VM system did.");

    // --- Causal decomposition (pager fleet) -----------------------------
    // A second kernel runs its default pager as a service fleet: every
    // refault is an RPC carrying a causal id, and the five boundary
    // stamps split the fault's pager wait into queue_wait / service /
    // transport / wake — printed next to the latency percentiles so a
    // slow tail is attributable to a stage, not just observed.
    let mut model = MachineModel::micro_vax_ii();
    model.mem_bytes = 2 << 20;
    let machine = Machine::boot(model);
    let mut opts = mach_vm::kernel::BootOptions::for_machine(&machine);
    opts.pager_fleet = Some(mach_vm::FleetOptions {
        pagers: 3,
        queue_capacity: 8,
    });
    let kernel = Kernel::boot_with(&machine, opts);
    let ps = kernel.page_size();
    kernel.enable_tracing(65_536);
    let tasks: Vec<_> = (0..3)
        .map(|_| {
            let t = kernel.create_task();
            let addr = t.map().allocate(kernel.ctx(), None, 16 * ps, true).unwrap();
            t.user(0, |u| u.dirty_range(addr, 16 * ps).unwrap());
            (t, addr)
        })
        .collect();
    while kernel.reclaim(32) > 0 {}
    for (t, addr) in &tasks {
        t.user(0, |u| {
            for p in 0..16u64 {
                u.read_u32(addr + p * ps).unwrap();
            }
        });
    }
    let log = kernel.trace_log();
    kernel.disable_tracing();

    let lat = log.latency_histogram();
    let chains = log.causal_breakdowns();
    println!();
    println!("pager-fleet refaults: {} causal chains", chains.len());
    println!(
        "fault latency p50 {} / p95 {} / max {} cycles",
        lat.percentile(0.50),
        lat.percentile(0.95),
        lat.max()
    );
    println!(
        "{:<8} {:>6} {:>5} {:>11} {:>9} {:>10} {:>6}",
        "causal", "pager", "obj", "queue_wait", "service", "transport", "wake"
    );
    for c in chains.iter().take(10) {
        println!(
            "{:<8} {:>6} {:>5} {:>11} {:>9} {:>10} {:>6}",
            c.causal, c.pager, c.object, c.queue_wait, c.service_time, c.transport, c.wake
        );
    }
    let sum = |f: fn(&mach_vm::trace::CausalBreakdown) -> u64| chains.iter().map(f).sum::<u64>();
    let (qw, svc, tp, wk) = (
        sum(|c| c.queue_wait),
        sum(|c| c.service_time),
        sum(|c| c.transport),
        sum(|c| c.wake),
    );
    println!(
        "totals: queue_wait {qw} + service {svc} + transport {tp} + wake {wk} = {} cycles",
        qw + svc + tp + wk
    );
    assert!(
        !chains.is_empty(),
        "refaults through the fleet leave causal chains"
    );
}
