//! Perfetto export: capture a pager-fleet workload in the VM trace ring
//! and render it as Chrome trace-event JSON.
//!
//! Boots a kernel with a three-service pager fleet, drives a
//! dirty → reclaim → refault workload so every refault crosses a fleet
//! port (minting a causal id and its enqueue/dequeue/served/delivered/
//! wake boundary stamps), then exports the log with
//! [`mach_vm::chrome_trace_json`]:
//!
//! ```text
//! cargo run --example perfetto_export -- trace.json
//! ```
//!
//! Load `trace.json` in `chrome://tracing` or <https://ui.perfetto.dev>:
//! process 0 has one track per simulated CPU with a slice per fault;
//! process 1 has one track per pager service with each request's
//! `queue_wait → service → transport → wake` decomposition, and flow
//! arrows tie every fault slice to the service that resolved it. With no
//! argument the JSON goes to stdout.
//!
//! The export is a pure function of the log and the workload is
//! single-CPU deterministic, so re-running this example produces a
//! byte-identical file (checked by `export_determinism` in
//! `crates/bench` and by the CI artifact job).

use mach_hw::machine::{Machine, MachineModel};
use mach_vm::kernel::{BootOptions, Kernel};
use mach_vm::{chrome_trace_json, FleetOptions};

fn main() {
    let out_path = std::env::args().nth(1);

    // A small machine so reclaim pressure is cheap to create.
    let mut model = MachineModel::micro_vax_ii();
    model.mem_bytes = 2 << 20;
    let machine = Machine::boot(model);
    let mut opts = BootOptions::for_machine(&machine);
    opts.pager_fleet = Some(FleetOptions {
        pagers: 3,
        queue_capacity: 8,
    });
    let kernel = Kernel::boot_with(&machine, opts);
    let ps = kernel.page_size();
    kernel.enable_tracing(65_536);

    // Dirty several objects, evict them, and refault: the refaults are
    // pageins through the fleet, each carrying a causal id end-to-end.
    let tasks: Vec<_> = (0..3)
        .map(|_| {
            let t = kernel.create_task();
            let addr = t.map().allocate(kernel.ctx(), None, 16 * ps, true).unwrap();
            t.user(0, |u| u.dirty_range(addr, 16 * ps).unwrap());
            (t, addr)
        })
        .collect();
    while kernel.reclaim(32) > 0 {}
    for (t, addr) in &tasks {
        t.user(0, |u| {
            for p in 0..16u64 {
                u.read_u32(addr + p * ps).unwrap();
            }
        });
    }

    let log = kernel.trace_log();
    kernel.disable_tracing();

    let pairs = log.fault_pairs();
    let chains = log.causal_breakdowns();
    let json = chrome_trace_json(&log);
    eprintln!(
        "captured {} records: {} fault slices, {} causal chains, {} bytes of JSON",
        log.len(),
        pairs.len(),
        chains.len(),
        json.len()
    );
    assert!(
        !chains.is_empty(),
        "the refault workload crossed the fleet, so causal chains exist"
    );

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write trace file");
            eprintln!("wrote {path} — open it in chrome://tracing or ui.perfetto.dev");
        }
        None => print!("{json}"),
    }
}
