//! Quickstart: boot a simulated VAX, create tasks, and exercise the
//! Table 2-1 operations — allocate, protect, inherit, fork (copy-on-write),
//! vm_read/vm_write/vm_copy and vm_statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mach_hw::machine::{Machine, MachineModel};
use mach_vm::kernel::Kernel;
use mach_vm::types::{Inheritance, Protection, VmError};

fn main() -> Result<(), VmError> {
    // Boot a MicroVAX II and the machine-independent kernel on top of it.
    let machine = Machine::boot(MachineModel::micro_vax_ii());
    let kernel = Kernel::boot(&machine);
    let ps = kernel.page_size();
    println!(
        "booted {} ({} hardware pages of {} B; Mach page size {} B)",
        machine.model().name,
        machine.model().mem_bytes / machine.hw_page_size(),
        machine.hw_page_size(),
        ps
    );

    // vm_allocate: 64 KB of zero-filled memory, anywhere.
    let task = kernel.create_task();
    let size = 64 * 1024;
    let addr = task.map().allocate(kernel.ctx(), None, size, true)?;
    println!("vm_allocate  → {size} bytes at {addr:#x}");

    // Touch it as user code: each first touch is a zero-fill page fault.
    task.user(0, |u| {
        for i in 0..size / ps {
            u.write_u32(addr + i * ps, i as u32).unwrap();
        }
        assert_eq!(u.read_u32(addr + 3 * ps).unwrap(), 3);
    });
    println!(
        "touched {} pages ({} zero-fill faults)",
        size / ps,
        kernel.statistics().zero_fill_count
    );

    // vm_protect: make one page read-only; writes now fault for real.
    task.map()
        .protect(kernel.ctx(), addr, ps, false, Protection::READ)?;
    task.user(0, |u| {
        assert_eq!(
            u.write_u32(addr, 9).unwrap_err(),
            VmError::ProtectionFailure
        );
        assert_eq!(u.read_u32(addr).unwrap(), 0);
    });
    println!("vm_protect   → page {addr:#x} is read-only; write faulted as it should");
    task.map()
        .protect(kernel.ctx(), addr, ps, false, Protection::DEFAULT)?;

    // fork: the child sees a copy-on-write snapshot; nobody copies pages.
    let child = task.fork();
    child.user(0, |u| {
        assert_eq!(u.read_u32(addr + 5 * ps).unwrap(), 5);
        u.write_u32(addr + 5 * ps, 500).unwrap(); // private to the child
    });
    task.user(0, |u| {
        assert_eq!(u.read_u32(addr + 5 * ps).unwrap(), 5); // parent unchanged
    });
    println!(
        "fork         → COW snapshot: child wrote privately ({} COW faults, {} chain GCs)",
        kernel.statistics().cow_faults,
        kernel.statistics().collapses + kernel.statistics().bypasses,
    );

    // vm_inherit(Shared): the next fork shares read/write.
    task.map()
        .inherit(kernel.ctx(), addr, ps, Inheritance::Shared)?;
    let sharer = task.fork();
    sharer.user(0, |u| u.write_u32(addr, 0xC0FFEE).unwrap());
    task.user(0, |u| assert_eq!(u.read_u32(addr).unwrap(), 0xC0FFEE));
    println!("vm_inherit   → shared page is coherent between parent and child");

    // vm_copy: a virtual copy moves no data.
    let dst = task.map().allocate(kernel.ctx(), None, size, true)?;
    kernel.vm_copy(&task, addr + ps, size - ps, dst + ps)?;
    task.user(0, |u| {
        assert_eq!(u.read_u32(dst + 3 * ps).unwrap(), 3);
    });
    println!(
        "vm_copy      → {} KB virtually copied, zero bytes moved",
        (size - ps) / 1024
    );

    // vm_read / vm_write: the kernel moves data across the boundary.
    kernel.vm_write(&task, addr + 7 * ps, b"hello from the kernel")?;
    let back = kernel.vm_read(&task, addr + 7 * ps, 21)?;
    assert_eq!(&back, b"hello from the kernel");
    println!(
        "vm_read/write→ round-tripped {:?}",
        String::from_utf8_lossy(&back)
    );

    // vm_regions + vm_statistics.
    println!("\nvm_regions of the task:");
    for r in task.map().regions() {
        println!(
            "  {:#010x}..{:#010x} {} max {} {:?}{}{}",
            r.start,
            r.end,
            r.prot,
            r.max_prot,
            r.inheritance,
            if r.shared { " shared" } else { "" },
            if r.copy_on_write { " cow" } else { "" },
        );
    }
    let s = kernel.statistics();
    println!(
        "\nvm_statistics: {} faults ({} zero-fill, {} cow), {} free / {} active pages",
        s.faults, s.zero_fill_count, s.cow_faults, s.free_count, s.active_count
    );
    Ok(())
}
