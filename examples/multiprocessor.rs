//! Multiprocessor memory sharing and TLB shootdown (paper §5.2).
//!
//! Four simulated NS32082 CPUs (an Encore MultiMax) run real host threads
//! against one read/write-shared region. None of the hardware keeps TLBs
//! coherent: when one CPU narrows protection, the others' stale entries
//! must be shot down with inter-processor interrupts — or tolerated,
//! depending on the strategy.
//!
//! ```text
//! cargo run --example multiprocessor
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mach_hw::machine::{Machine, MachineModel};
use mach_vm::kernel::Kernel;
use mach_vm::types::{Inheritance, Protection};

fn main() {
    let n_cpus = 4;
    let machine = Machine::boot(MachineModel::multimax(n_cpus));
    let kernel = Kernel::boot(&machine);
    let ps = kernel.page_size();
    println!(
        "booted {} with {} CPUs (no hardware TLB coherence)",
        machine.model().name,
        n_cpus
    );

    // A shared counter region, inherited read/write by worker tasks.
    let parent = kernel.create_task();
    let addr = parent.map().allocate(kernel.ctx(), None, ps, true).unwrap();
    parent
        .map()
        .inherit(kernel.ctx(), addr, ps, Inheritance::Shared)
        .unwrap();
    parent.user(0, |u| u.write_u32(addr, 0).unwrap());

    // One worker task per extra CPU, each incrementing a private slot of
    // the shared page (no data race on the same word).
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for cpu in 1..n_cpus {
        let worker = parent.fork();
        let stop = Arc::clone(&stop);
        let total = Arc::clone(&total);
        threads.push(std::thread::spawn(move || {
            worker.user(cpu, |u| {
                let slot = addr + 4 * cpu as u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let v = u.read_u32(slot).unwrap_or(0);
                    if u.write_u32(slot, v + 1).is_ok() {
                        n += 1;
                    }
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }));
    }

    // Meanwhile CPU 0 periodically write-protects the page: every worker's
    // cached translation must be invalidated *immediately* (time-critical
    // strategy), or their next write would sneak past the protection.
    let mut toggles = 0;
    {
        let _bind = machine.bind_cpu(0);
        parent.activate(0);
        for _ in 0..20 {
            parent
                .map()
                .protect(kernel.ctx(), addr, ps, false, Protection::READ)
                .unwrap();
            // While read-only, no worker may write: their TLBs were shot.
            std::thread::sleep(std::time::Duration::from_millis(2));
            parent
                .map()
                .protect(kernel.ctx(), addr, ps, false, Protection::DEFAULT)
                .unwrap();
            toggles += 1;
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
    }
    stop.store(true, Ordering::Release);
    for t in threads {
        t.join().unwrap();
    }

    // Every worker's slot is consistent with what it believes it wrote.
    let sum: u64 = parent.user(0, |u| {
        (1..n_cpus as u64)
            .map(|c| u.read_u32(addr + 4 * c).unwrap() as u64)
            .sum()
    });
    println!(
        "workers completed {} increments; shared page holds {}",
        total.load(Ordering::Relaxed),
        sum
    );
    assert_eq!(
        sum,
        total.load(Ordering::Relaxed),
        "no write slipped a protection window"
    );

    println!(
        "protection toggles: {toggles}; IPIs sent {} / handled {}; shootdown timeouts {}",
        machine.stats.ipis_sent.load(Ordering::Relaxed),
        machine.stats.ipis_handled.load(Ordering::Relaxed),
        machine.stats.shootdown_timeouts.load(Ordering::Relaxed),
    );
    let s = kernel.statistics();
    println!(
        "faults {} (the workers refault after each shootdown and heal lazily)",
        s.faults
    );

    // ------------------------------------------------------------------
    // Scaling table: the same machine model at 1/2/4/8 CPUs, every CPU
    // running its own zero-fill fault stream from a pinned host thread.
    // With the resident table sharded and free pages handed out from
    // per-CPU lists, aggregate fault throughput should grow ~linearly.
    // ------------------------------------------------------------------
    println!("\nweak-scaling zero-fill, {} pages per CPU:", 64);
    println!(
        "{:>5} {:>10} {:>14} {:>8}",
        "cpus", "faults", "faults/sim-s", "gain"
    );
    let mut base = 0u64;
    for cpus in [1usize, 2, 4, 8] {
        let machine = Machine::boot(MachineModel::multimax(cpus));
        let kernel = Kernel::boot(&machine);
        let ps = kernel.page_size();
        let size = 64 * ps;
        let tasks: Vec<_> = (0..cpus)
            .map(|_| {
                let t = kernel.create_task();
                let a = t.map().allocate(kernel.ctx(), None, size, true).unwrap();
                (t, a)
            })
            .collect();
        let before = kernel.statistics();
        let (agg, _) = mach_bench::measure::measured_parallel(&machine, cpus, |cpu| {
            let (task, a) = &tasks[cpu];
            task.user(cpu, |u| u.dirty_range(*a, size).unwrap());
        });
        let faults = kernel.statistics().delta(&before).faults;
        let per_sec = faults * 1_000_000 / agg.elapsed_us.max(1);
        if cpus == 1 {
            base = per_sec;
        }
        println!(
            "{:>5} {:>10} {:>14} {:>7.2}x",
            cpus,
            faults,
            per_sec,
            per_sec as f64 / base.max(1) as f64
        );
    }
}
