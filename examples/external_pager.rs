//! External pager: "virtual memory related functions, such as pagein and
//! pageout, can be performed directly by user-state tasks for memory
//! objects they create" (paper §2.1, §3.3).
//!
//! A user-state pager thread implements a 1 MB memory object whose pages
//! are *generated on demand* (a deterministic function of the offset) and
//! which records every page the kernel writes back at pageout time — a
//! tiny version of a network/database pager.
//!
//! ```text
//! cargo run --example external_pager
//! ```

use std::collections::HashMap;

use mach_hw::machine::{Machine, MachineModel};
use mach_ipc::{Port, SendRight};
use mach_vm::kernel::Kernel;
use mach_vm::{serve_pager, UserPager};

/// The user-state pager: generated pages + a write-back journal.
struct GeneratedObject {
    generated: u64,
    written: HashMap<u64, Vec<u8>>,
}

impl UserPager for GeneratedObject {
    fn init(&mut self, object_id: u64, _request_port: &SendRight) {
        println!("[pager] pager_init for object {object_id}");
    }

    fn read(&mut self, offset: u64, length: u64) -> Option<Vec<u8>> {
        // Data previously paged out wins; otherwise generate it.
        if let Some(d) = self.written.get(&offset) {
            println!("[pager] pager_data_request {offset:#x} → recalled written page");
            return Some(d.clone());
        }
        self.generated += 1;
        println!("[pager] pager_data_request {offset:#x} → generated page");
        Some((0..length).map(|i| ((offset + i) % 251) as u8).collect())
    }

    fn write(&mut self, offset: u64, data: &[u8]) {
        println!(
            "[pager] pager_data_write {offset:#x} ({} bytes)",
            data.len()
        );
        self.written.insert(offset, data.to_vec());
    }
}

fn main() {
    // A small machine so pageout pressure is easy to create.
    let mut model = MachineModel::micro_vax_ii();
    model.mem_bytes = 2 << 20;
    let machine = Machine::boot(model);
    let kernel = Kernel::boot(&machine);
    let ps = kernel.page_size();

    // The pager is an ordinary user thread behind a port.
    let (pager_port, pager_rx) = Port::allocate("generated-object-pager", 64);
    let server = std::thread::spawn(move || {
        serve_pager(
            &pager_rx,
            GeneratedObject {
                generated: 0,
                written: HashMap::new(),
            },
        )
    });

    // vm_allocate_with_pager: map 1 MB of the pager's object.
    let task = kernel.create_task();
    let size = 1 << 20;
    let addr = kernel
        .allocate_with_pager(&task, None, size, true, pager_port, 0)
        .expect("allocate with pager");
    println!("[kernel] mapped pager-backed object at {addr:#x} ({size} bytes)");

    // Faults are served by the pager; verify the generated pattern.
    task.user(0, |u| {
        let bytes = u.read_bytes(addr + 3 * ps, 8).unwrap();
        let expect: Vec<u8> = (0..8).map(|i| ((3 * ps + i) % 251) as u8).collect();
        assert_eq!(bytes, expect);
        println!(
            "[task]   read generated data at offset {:#x}: {bytes:?}",
            3 * ps
        );

        // Dirty a bunch of pages so pageout has something to write back.
        for p in 0..64u64 {
            u.write_u32(addr + p * ps, 0xBEEF_0000 | p as u32).unwrap();
        }
        println!("[task]   dirtied 64 pages");
    });

    // Force memory pressure: the paging daemon removes mappings with the
    // deferred shootdown strategy and writes dirty pages to the pager.
    let freed = kernel.reclaim(64);
    println!("[kernel] reclaimed {freed} pages under pressure");

    // Refault: the data comes back from the pager's journal.
    task.user(0, |u| {
        for p in (0..64u64).step_by(9) {
            assert_eq!(u.read_u32(addr + p * ps).unwrap(), 0xBEEF_0000 | p as u32);
        }
        println!("[task]   refaulted pages round-tripped through the pager");
    });

    let s = kernel.statistics();
    println!(
        "[kernel] vm_statistics: {} pageins, {} pageouts, {} faults",
        s.pageins, s.pageouts, s.faults
    );

    // Task exit terminates the object; the pager's server loop returns.
    drop(task);
    let pager = server.join().unwrap();
    println!(
        "[pager]  exit: generated {} pages, holds {} written-back pages",
        pager.generated,
        pager.written.len()
    );
}
