//! The paper's headline, live: one machine-independent program runs
//! unchanged on four memory architectures, while the per-architecture
//! quirks of Section 5 show up only in the machine-dependent statistics.
//!
//! ```text
//! cargo run --example machine_zoo
//! ```

use mach_bench::traced;
use mach_hw::machine::{Machine, MachineModel};
use mach_vm::kernel::Kernel;
use mach_vm::trace::TraceLog;
use mach_vm::types::Inheritance;

/// A workload that knows nothing about hardware: fork trees, sharing,
/// copy-on-write, protection — pure Table 2-1.
fn machine_independent_workload(kernel: &Kernel) -> (u64, u64, u64) {
    let ps = kernel.page_size();
    let task = kernel.create_task();
    let size = 32 * ps;
    let addr = task.map().allocate(kernel.ctx(), None, size, true).unwrap();
    task.user(0, |u| u.dirty_range(addr, size).unwrap());

    // A COW fork and a shared fork.
    let cow_child = task.fork();
    task.map()
        .inherit(kernel.ctx(), addr, ps, Inheritance::Shared)
        .unwrap();
    let share_child = task.fork();

    cow_child.user(0, |u| {
        u.write_u32(addr + ps, 111).unwrap();
        assert_eq!(u.read_u32(addr + 2 * ps).unwrap(), 0x5A5A_5A5A);
    });
    share_child.user(0, |u| u.write_u32(addr, 222).unwrap());
    task.user(0, |u| {
        assert_eq!(u.read_u32(addr).unwrap(), 222, "shared write visible");
        assert_eq!(u.read_u32(addr + ps).unwrap(), 0x5A5A_5A5A, "cow write not");
    });

    // Ten more tasks, to stress context-style resources.
    let extras: Vec<_> = (0..10)
        .map(|i| {
            let t = kernel.create_task();
            let a = t.map().allocate(kernel.ctx(), None, 2 * ps, true).unwrap();
            t.user(0, |u| u.write_u32(a, i).unwrap());
            (t, a)
        })
        .collect();
    for (i, (t, a)) in extras.iter().enumerate() {
        t.user(0, |u| assert_eq!(u.read_u32(*a).unwrap(), i as u32));
    }

    let s = kernel.statistics();
    // Sample table space while the tasks are still alive (their tables
    // are freed at task exit).
    let table_bytes = kernel.machdep().stats().table_bytes;
    (s.faults, s.cow_faults, table_bytes)
}

fn main() {
    println!(
        "{:<18} {:>8} {:>6} {:>6} {:>9} {:>9} {:>8} {:>12}",
        "machine", "hw page", "mach", "faults", "cow", "aliases", "ctx/pmeg", "table bytes"
    );
    let mut pmap_rows = Vec::new();
    for model in [
        MachineModel::micro_vax_ii(),
        MachineModel::rt_pc(),
        MachineModel::sun_3_160(),
        MachineModel::multimax(1),
        MachineModel::rp3(1),
    ] {
        let name = model.name;
        let machine = Machine::boot(model);
        let kernel = Kernel::boot(&machine);
        // The same workload runs traced and profiled: the event ring
        // reconstructs each port's fault-latency distribution and the span
        // profiler attributes cycles inside the fault path — all without
        // touching the workload.
        kernel.enable_profiling();
        kernel.enable_health();
        let (log, (faults, cow, table_bytes)) =
            traced(&kernel, 65_536, || machine_independent_workload(&kernel));
        let profile = kernel.profile_report();
        let health = kernel.health_report();
        let md = kernel.machdep().stats();
        println!(
            "{:<18} {:>8} {:>6} {:>6} {:>9} {:>9} {:>8} {:>12}",
            name,
            machine.hw_page_size(),
            kernel.page_size(),
            faults,
            cow,
            md.alias_evictions,
            format!("{}/{}", md.context_steals, md.pmeg_steals),
            table_bytes,
        );
        pmap_rows.push((name, md, log, profile, health));
    }
    println!();
    println!("Same workload, same machine-independent kernel. The differences are");
    println!("exactly the Section 5 quirks: the RT PC's inverted table evicts");
    println!("aliases, the SUN 3 steals contexts past 8 tasks, the VAX and the");
    println!("NS32082 burn table space, the RT PC burns none, and the TLB-only");
    println!("RP3 has no hardware tables at all (the paper's footnote 2).");

    // The chassis's own counters: each port is the same shared range-walk
    // and TLB-coalescing machinery, so the operation mix lines up while
    // flush work varies with the architecture.
    println!();
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10}",
        "pmap (chassis)", "enters", "removes", "protects", "deferred", "rounds", "flush ipis"
    );
    for (name, md, _, _, _) in &pmap_rows {
        println!(
            "{:<18} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10}",
            name,
            md.enters,
            md.removes,
            md.protects,
            md.deferred_queued,
            md.flush_rounds,
            md.flush_ipis,
        );
    }
    println!();
    println!("Every flush round covers all the pages an operation touched: on a");
    println!("uniprocessor the IPI column stays 0, and on a multiprocessor it");
    println!("counts one interrupt per remote CPU per round, not per page.");

    // Per-port fault latency from the trace ring: the fault path is the
    // same machine-independent code everywhere, so the spread between
    // rows is the cost of each port's hardware tables.
    println!();
    println!(
        "{:<18} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "fault latency", "faults", "p50 cyc", "p95 cyc", "max cyc", "mean cyc"
    );
    for (name, _, log, _, _) in &pmap_rows {
        print_latency_row(name, log);
    }
    println!();
    println!("Latencies come from pairing FaultBegin/FaultEnd events in the VM");
    println!("trace ring (see docs/TRACING.md) — no workload instrumentation.");

    // Where those cycles went: the span profiler's self/total tree for
    // each port, over the exact same run.
    for (name, _, _, profile, _) in &pmap_rows {
        println!();
        println!("cycle profile — {name}");
        print!("{profile}");
    }
    println!();
    println!("Self time is cycles charged inside a span but outside its");
    println!("children; the fault row's total reconciles exactly with the");
    println!("trace ring's fault-latency sum (see docs/METRICS.md).");

    // Structure health: the data-structure shapes behind those latencies.
    println!();
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "structure health", "shadow", "shadow", "pv-list", "pv-list", "hint hit"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "", "p50", "max", "p50", "max", "rate"
    );
    for (name, _, _, _, health) in &pmap_rows {
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9.0}%",
            name,
            health.shadow_depth.percentile(0.50),
            health.shadow_depth.max,
            health.pv_list_len.percentile(0.50),
            health.pv_list_len.max,
            health.hint_hit_rate() * 100.0,
        );
    }
    println!();
    println!("Shadow depth is sampled per fault, pv-list length per pmap_enter;");
    println!("both stay flat here because the workload forks once — deep chains");
    println!("only appear when forks stack (see the shadow-chain ablation).");
}

fn print_latency_row(name: &str, log: &TraceLog) {
    let h = log.latency_histogram();
    println!(
        "{:<18} {:>7} {:>10} {:>10} {:>10} {:>10}",
        name,
        h.count(),
        h.percentile(0.50),
        h.percentile(0.95),
        h.max(),
        h.mean(),
    );
}
